//! A multi-cube HMC mesh: the scale-out memory substrate of the
//! companion paper ("A Scalable Near-Memory Architecture for Training
//! Deep Neural Networks on Large In-Memory Datasets").
//!
//! One [`HmcSubsystem`] models the bandwidth wall of a single cube —
//! past ~8 clusters everything queues on one 32 GB/s LoB pipe. The
//! scale-out architecture breaks that wall by spreading the processing
//! clusters across *many* cubes connected by their serial links, and
//! keeping each job's traffic local to the cube that owns its operand
//! data. [`HmcMesh`] models exactly that: `cubes` independent
//! [`HmcSubsystem`]s, each arbitrating only the clusters physically
//! attached to it, plus a serial-link hop model for the traffic that
//! *isn't* local.
//!
//! ## Topology and placement
//!
//! `clusters` clusters are block-partitioned over `cubes` cubes in
//! index order ([`HmcMesh::cube_of`]), so consecutive cluster indices
//! share a cube exactly as consecutive NTX clusters share a LoB. Each
//! job's operand region lives on a *home cube* ([`HmcMesh::home_of`]:
//! an explicit assignment, or round-robin by job id). A cluster
//! reading its own cube's data gets a local port — the cube's
//! work-conserving slot schedule over its attached clusters only, so
//! an 8-cube mesh with one cluster per cube hands every cluster the
//! full per-cube pipe. A cluster reading a *remote* cube's data gets
//! a port whose slot budget is pre-clipped to the *minimum* of (a)
//! the LoB share the home cube would hand one extra round-robin party
//! beyond its attached clusters and (b) its share of one serial link,
//! time-shared by the source cube's clusters — remote traffic can
//! never beat the link.
//!
//! ## Determinism
//!
//! Remote grants reuse the exact Q16 slot arithmetic of the single
//! cube (a 1-contender [`HmcPort`] with the clipped budget), so every
//! port in the mesh remains a pure function of
//! `(cycle, geometry, budgets)`: farm clusters still simulate
//! independently (the `parallel` feature is untouched) and runs are
//! bit-reproducible. Like the single cube, the mesh arbitrates
//! *timing only* — backing stores are private per cluster, so outputs
//! are bit-identical to an ideal-memory run. The remote schedule is
//! deliberately open-loop: the home cube's local ports do not observe
//! remote contenders (each side prices the other statically), which
//! keeps the no-lock-step property at the cost of a slightly
//! optimistic aggregate during mixed local/remote bursts.
//!
//! A 1-cube mesh degenerates to the PR 5 single-cube path bit for bit:
//! every cluster is local, the lone cube arbitrates all of them, and
//! no link cap is ever constructed (enforced by proptest in
//! `ntx-sched`).

use crate::ext_mem::ExtMemory;
use crate::hmc::{HmcConfig, HmcPort, HmcSubsystem, SLOT_FP_BITS};

/// Organisation of the mesh: how many cubes, what each cube is, and
/// what an off-cube hop costs on top of the bandwidth clip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshConfig {
    /// Number of HMC cubes in the mesh.
    pub cubes: u32,
    /// Organisation of each cube (all cubes are identical).
    pub cube: HmcConfig,
    /// One-way serial-link latency charged once per remote shard, in
    /// NTX cycles (SerDes + NoC traversal; ~50 ns at 1.25 GHz).
    pub link_latency_cycles: u32,
}

impl Default for MeshConfig {
    /// A four-cube mesh of Fig. 1 cubes with a 64-cycle hop.
    fn default() -> Self {
        Self {
            cubes: 4,
            cube: HmcConfig::default(),
            link_latency_cycles: 64,
        }
    }
}

impl MeshConfig {
    /// The same mesh with `cubes` cubes.
    #[must_use]
    pub fn with_cubes(mut self, cubes: u32) -> Self {
        self.cubes = cubes;
        self
    }

    /// The same mesh with every cube replaced by `cube`.
    #[must_use]
    pub fn with_cube(mut self, cube: HmcConfig) -> Self {
        self.cube = cube;
        self
    }

    /// The same mesh with a different one-way hop latency.
    #[must_use]
    pub fn with_link_latency(mut self, cycles: u32) -> Self {
        self.link_latency_cycles = cycles;
        self
    }

    /// Aggregate DRAM bandwidth of the whole mesh, bytes/s.
    #[must_use]
    pub fn total_bandwidth(&self) -> f64 {
        f64::from(self.cubes) * self.cube.shared_bandwidth()
    }
}

/// The multi-cube memory subsystem: per-cube [`HmcSubsystem`]s plus
/// the serial-link model for remote traffic.
///
/// # Example
///
/// ```
/// use ntx_mem::hmc::HmcConfig;
/// use ntx_mem::mesh::{HmcMesh, MeshConfig};
///
/// // 8 clusters over 4 cubes: 2 clusters per cube, so a local port
/// // shares a 6.4-word pipe two ways instead of eight ways.
/// let mesh = HmcMesh::new(MeshConfig::default(), 8, 1.25e9, 1);
/// assert_eq!(mesh.cube_of(5), 2);
/// assert_eq!(mesh.attached(2), 2);
/// // Home cubes default to round-robin by job id.
/// assert_eq!(mesh.home_of(6, None), 2);
/// assert_eq!(mesh.home_of(6, Some(1)), 1);
/// // One 4-word cluster per cube: the local port owns its cube's
/// // pipe, while a remote read is clipped to the 3.2 w/c an extra
/// // LoB contender would see — below the port width, so it throttles.
/// let mesh = HmcMesh::new(MeshConfig::default(), 4, 1.25e9, 4);
/// assert!(!mesh.port(3, 3).throttles());
/// assert!(mesh.port(3, 0).throttles());
/// ```
#[derive(Debug)]
pub struct HmcMesh {
    config: MeshConfig,
    clusters: u32,
    /// Cube `k` owns clusters `starts[k]..starts[k + 1]`.
    starts: Vec<u32>,
    cubes: Vec<HmcSubsystem>,
    /// Q16 word-slot budget of one serial link at the NTX clock.
    link_budget_q16: u64,
}

impl HmcMesh {
    /// Builds the mesh for `clusters` clusters whose AXI ports move
    /// `port_words_per_cycle` 32-bit words per NTX cycle at
    /// `ntx_freq_hz`, block-partitioned over `config.cubes` cubes.
    ///
    /// # Panics
    ///
    /// Panics when the mesh has no cubes, when there are fewer
    /// clusters than cubes (a cube with no attached cluster has no
    /// port to model), or on the degenerate parameters
    /// [`HmcSubsystem::new`] rejects.
    #[must_use]
    pub fn new(
        config: MeshConfig,
        clusters: u32,
        ntx_freq_hz: f64,
        port_words_per_cycle: u32,
    ) -> Self {
        assert!(config.cubes > 0, "mesh needs at least one cube");
        assert!(
            clusters >= config.cubes,
            "every cube needs at least one attached cluster \
             ({clusters} clusters < {} cubes)",
            config.cubes
        );
        // `starts[k]` is the first cluster whose `cube_of` is `k`:
        // the ceil counterpart of the floor in `cube_of`.
        let starts: Vec<u32> = (0..=config.cubes)
            .map(|k| {
                ((u64::from(k) * u64::from(clusters)).div_ceil(u64::from(config.cubes))) as u32
            })
            .collect();
        let cubes = (0..config.cubes)
            .map(|k| {
                let attached = starts[k as usize + 1] - starts[k as usize];
                HmcSubsystem::new(config.cube, attached, ntx_freq_hz, port_words_per_cycle)
            })
            .collect();
        let link_words = config.cube.link_bandwidth / (4.0 * ntx_freq_hz);
        let link_budget_q16 = (link_words * f64::from(1u32 << SLOT_FP_BITS)).round() as u64;
        assert!(
            link_budget_q16 > 0,
            "link budget rounds to zero words/cycle"
        );
        Self {
            config,
            clusters,
            starts,
            cubes,
            link_budget_q16,
        }
    }

    /// The mesh organisation.
    #[must_use]
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Number of attached clusters across the whole mesh.
    #[must_use]
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// Number of cubes.
    #[must_use]
    pub fn cubes(&self) -> u32 {
        self.config.cubes
    }

    /// The cube cluster `cluster` is physically attached to (block
    /// partition in index order).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cube_of(&self, cluster: u32) -> u32 {
        assert!(cluster < self.clusters, "cluster index out of range");
        (u64::from(cluster) * u64::from(self.config.cubes) / u64::from(self.clusters)) as u32
    }

    /// Number of clusters attached to `cube`.
    ///
    /// # Panics
    ///
    /// Panics if `cube` is out of range.
    #[must_use]
    pub fn attached(&self, cube: u32) -> u32 {
        assert!(cube < self.config.cubes, "cube index out of range");
        self.starts[cube as usize + 1] - self.starts[cube as usize]
    }

    /// This cluster's port rank within its own cube.
    fn rank_in_cube(&self, cluster: u32) -> u32 {
        cluster - self.starts[self.cube_of(cluster) as usize]
    }

    /// Resolves a job's home cube: the explicit request wrapped into
    /// range, or round-robin over the cubes by job id — the default
    /// that spreads an un-annotated job stream evenly over the mesh.
    #[must_use]
    pub fn home_of(&self, job_id: u64, explicit: Option<u32>) -> u32 {
        match explicit {
            Some(cube) => cube % self.config.cubes,
            None => (job_id % u64::from(self.config.cubes)) as u32,
        }
    }

    /// True when `cluster` is attached to `home_cube` — its traffic
    /// stays on-cube and pays no link cost.
    #[must_use]
    pub fn is_local(&self, cluster: u32, home_cube: u32) -> bool {
        self.cube_of(cluster) == home_cube % self.config.cubes
    }

    /// One-way hop latency for a remote shard, NTX cycles.
    #[must_use]
    pub fn link_latency_cycles(&self) -> u32 {
        self.config.link_latency_cycles
    }

    /// The grant schedule `cluster` sees when its operands live on
    /// `home_cube`. Local: the home cube's slot schedule over its
    /// attached clusters. Remote: a 1-contender schedule whose budget
    /// is the minimum of the LoB share the home cube would hand one
    /// extra contender and this cluster's share of one serial link
    /// (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` or `home_cube` is out of range, or if the
    /// remote share rounds to zero words per cycle (the port would
    /// starve forever).
    #[must_use]
    pub fn port(&self, cluster: u32, home_cube: u32) -> HmcPort {
        assert!(home_cube < self.config.cubes, "home cube out of range");
        let own = self.cube_of(cluster);
        if own == home_cube {
            return self.cubes[own as usize].port(self.rank_in_cube(cluster));
        }
        let home = &self.cubes[home_cube as usize];
        let lob_share = home.budget_q16 / (u64::from(home.ports) + 1);
        let link_share = self.link_budget_q16 / u64::from(self.attached(own));
        let budget_q16 = lob_share.min(link_share);
        assert!(budget_q16 > 0, "remote share rounds to zero words/cycle");
        HmcPort {
            index: 0,
            ports: 1,
            port_words_per_cycle: home.port_words_per_cycle,
            budget_q16,
            degrade: None,
        }
    }

    /// Shared slot budget of one cube, words per NTX cycle.
    #[must_use]
    pub fn shared_words_per_cycle(&self) -> f64 {
        self.cubes[0].shared_words_per_cycle()
    }

    /// Slot budget of one serial link, words per NTX cycle.
    #[must_use]
    pub fn link_words_per_cycle(&self) -> f64 {
        self.link_budget_q16 as f64 / f64::from(1u32 << SLOT_FP_BITS)
    }

    /// Mutable access to the backing store of `cluster` (cluster
    /// order, i.e. port order within cube order).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range (or its store was taken).
    pub fn mem(&mut self, cluster: u32) -> &mut ExtMemory {
        let cube = self.cube_of(cluster);
        let rank = self.rank_in_cube(cluster);
        self.cubes[cube as usize].mem(rank)
    }

    /// Moves all backing stores out, one per cluster in cluster order,
    /// so a farm can install them behind its AXI ports; the mesh keeps
    /// arbitrating the bandwidth.
    pub fn take_memories(&mut self) -> Vec<ExtMemory> {
        self.cubes
            .iter_mut()
            .flat_map(HmcSubsystem::take_memories)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pooled farm wires per-cube ports into clusters living on
    /// worker threads; the mesh and its ports must stay `Send`.
    #[test]
    fn mesh_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HmcMesh>();
    }

    #[test]
    fn block_partition_is_contiguous_and_balanced() {
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(4), 10, 1.25e9, 1);
        let cubes: Vec<u32> = (0..10).map(|c| mesh.cube_of(c)).collect();
        assert_eq!(cubes, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
        assert_eq!(
            (0..4).map(|k| mesh.attached(k)).collect::<Vec<_>>(),
            vec![3, 2, 3, 2]
        );
        assert_eq!((0..4).map(|k| mesh.attached(k)).sum::<u32>(), 10);
    }

    #[test]
    fn one_cube_mesh_degenerates_to_single_subsystem() {
        // The degeneracy anchor: every port of a 1-cube mesh must be
        // bitwise the port a standalone HmcSubsystem would hand out.
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(1), 8, 1.25e9, 1);
        let sub = HmcSubsystem::new(HmcConfig::default(), 8, 1.25e9, 1);
        for c in 0..8 {
            assert_eq!(mesh.port(c, 0), sub.port(c));
        }
    }

    #[test]
    fn local_ports_share_only_their_own_cube() {
        // 8 clusters on 8 cubes: each cube arbitrates one port, so the
        // mesh-level schedule is work-conserving — every cluster gets
        // the full per-cube pipe instead of 1/8 of one cube.
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(8), 8, 1.25e9, 8);
        for c in 0..8 {
            let p = mesh.port(c, c);
            let drained: u64 = (0..100).map(|t| u64::from(p.granted(t))).sum();
            let issued: u64 = (0..100).map(|t| p.total_slots(t)).sum();
            assert_eq!(drained, issued, "cluster {c} must own its cube's pipe");
        }
        // 64 clusters on 8 cubes: 8-way sharing per cube, same as a
        // single cube with 8 ports.
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(8), 64, 1.25e9, 1);
        let sub = HmcSubsystem::new(HmcConfig::default(), 8, 1.25e9, 1);
        for t in 0..200 {
            assert_eq!(mesh.port(19, 2).granted(t), sub.port(3).granted(t));
        }
    }

    #[test]
    fn remote_port_is_clipped_by_link_and_extra_contention() {
        // 64 clusters on 8 cubes, cluster 0 reading cube 7: the LoB
        // share as a 9th contender is 6.4/9 ≈ 0.711 w/c, the link
        // share is 6/8 = 0.75 w/c — the LoB clip binds.
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(8), 64, 1.25e9, 1);
        let p = mesh.port(0, 7);
        assert!(p.throttles());
        let window = 9000u64;
        let drained: u64 = (0..window).map(|t| u64::from(p.granted(t))).sum();
        let rate = drained as f64 / window as f64;
        assert!(
            (rate - 6.4 / 9.0).abs() < 0.01,
            "remote rate {rate} != LoB extra-contender share"
        );
        // Widen the LoB so only the serial link binds: 8 sharers on a
        // 6-word link = 0.75 w/c.
        let wide = MeshConfig::default()
            .with_cubes(8)
            .with_cube(HmcConfig::default().with_interconnect_bits(4096));
        let mesh = HmcMesh::new(wide, 64, 1.25e9, 1);
        let p = mesh.port(0, 7);
        assert!(p.throttles(), "the link alone must still throttle");
        let drained: u64 = (0..window).map(|t| u64::from(p.granted(t))).sum();
        let rate = drained as f64 / window as f64;
        assert!((rate - 0.75).abs() < 0.01, "link share {rate} != 6/8");
    }

    #[test]
    fn remote_rate_never_beats_local_share_or_link() {
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(4), 16, 1.25e9, 2);
        let window = 4000u64;
        let rate = |p: HmcPort| {
            (0..window).map(|t| u64::from(p.granted(t))).sum::<u64>() as f64 / window as f64
        };
        let remote = rate(mesh.port(5, 3));
        // A remote reader contends as one extra party on the home
        // cube's LoB, so it can never beat a local port of that cube,
        // and it can never beat its share of one serial link.
        assert!(remote <= rate(mesh.port(13, 3)) + 1e-9);
        assert!(remote <= mesh.link_words_per_cycle() / 4.0 + 1e-9);
        assert!(remote > 0.0);
    }

    #[test]
    fn home_default_is_round_robin_and_explicit_wraps() {
        let mesh = HmcMesh::new(MeshConfig::default().with_cubes(4), 8, 1.25e9, 1);
        let homes: Vec<u32> = (0..6).map(|id| mesh.home_of(id, None)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(mesh.home_of(0, Some(6)), 2, "explicit homes wrap");
        assert!(mesh.is_local(7, 3));
        assert!(!mesh.is_local(0, 3));
    }

    #[test]
    fn memories_come_out_in_cluster_order() {
        let mut mesh = HmcMesh::new(MeshConfig::default().with_cubes(4), 10, 1.25e9, 1);
        for c in 0..10 {
            mesh.mem(c).write_f32(0x10, c as f32);
        }
        let mut mems = mesh.take_memories();
        assert_eq!(mems.len(), 10);
        for (c, mem) in mems.iter_mut().enumerate() {
            assert_eq!(mem.read_f32(0x10), c as f32);
        }
    }

    #[test]
    #[should_panic(expected = "at least one attached cluster")]
    fn rejects_more_cubes_than_clusters() {
        let _ = HmcMesh::new(MeshConfig::default().with_cubes(8), 4, 1.25e9, 1);
    }
}
