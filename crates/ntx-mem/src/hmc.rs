//! The shared Hybrid Memory Cube external-memory subsystem (Fig. 1).
//!
//! The paper's full system attaches `m` processing clusters to the main
//! interconnect on the Logic Base (LoB) of an HMC 2.0 device: 4 DRAM
//! dies, 32 vaults, 1 GB capacity, four serial links off-cube, and a
//! 256-bit main interconnect at 1 GHz. [`HmcConfig`] captures that
//! organisation for the system-level models in `ntx-model`; on top of
//! it [`HmcSubsystem`] models the *bandwidth* of the cube for the cycle
//! simulator: every attached cluster port draws its external-memory
//! word slots from one shared per-cycle budget (the LoB interconnect
//! capped by the aggregate vault bandwidth), so scale-out runs
//! reproduce the memory-bound saturation of the companion architecture
//! paper instead of each cluster owning an ideal private
//! [`ExtMemory`].
//!
//! ## Arbitration model
//!
//! The subsystem converts the shared bandwidth into word *slots per
//! NTX cycle* (a Q16 fixed-point rational, so fractional budgets like
//! 6.4 words/cycle are scheduled exactly over time) and splits each
//! cycle's slots fairly across the attached ports: every port receives
//! `slots / ports`, and the `slots % ports` remainder rotates
//! round-robin with the cycle index. The grant a port sees is therefore
//! a pure function of `(cycle, port, ports, budget)` — the schedule a
//! round-robin arbiter produces at the saturated operating point where
//! every port is streaming, which is exactly the regime the scale-out
//! saturation study measures. Because grants are state-free, clusters
//! can still be simulated independently (and in parallel) without
//! lock-stepping the farm, and a run is bit-reproducible by
//! construction.
//!
//! The schedule is *work-conserving with respect to a declared demand
//! vector*: [`HmcSubsystem::port_among`] divides every cycle's slots
//! across only the ports named active, so slots an idle port would
//! have wasted are redistributed within the same cycle and a lone
//! active cluster receives the full pipe (capped at its own AXI
//! width) instead of its 1/N fair share. Grants remain a pure
//! function of `(cycle, port, demand vector, budget)` — nothing is
//! negotiated at run time, so independent per-cluster simulation is
//! preserved. Declaring every port active ([`HmcSubsystem::port`])
//! reproduces the saturated schedule bit for bit; that saturated
//! demand vector is what the cluster farm assumes, since its drive
//! modes must observe identical grants without lock-stepping.
//!
//! Only *timing* flows through the arbiter. Data ordering is untouched
//! (a denied slot delays the in-order DMA stream, it never reorders
//! it), so outputs of a contended run are bit-identical to the ideal
//! run — enforced by the differential proptests in `ntx-sim` and
//! `ntx-sched`.

use crate::ext_mem::ExtMemory;

/// Organisation of one HMC device and its LoB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcConfig {
    /// Number of DRAM vaults (and vault controllers on the LoB).
    pub vaults: u32,
    /// Number of stacked DRAM dies.
    pub dram_dies: u32,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Serial links leaving the cube.
    pub serial_links: u32,
    /// Peak bandwidth of one vault controller, bytes/s.
    pub vault_bandwidth: f64,
    /// Peak bandwidth of one serial link, bytes/s.
    pub link_bandwidth: f64,
    /// Main LoB interconnect width in bits.
    pub interconnect_bits: u32,
    /// Main LoB interconnect clock in Hz.
    pub interconnect_hz: f64,
}

impl Default for HmcConfig {
    /// The HMC 2.0 configuration of Fig. 1.
    fn default() -> Self {
        Self {
            vaults: 32,
            dram_dies: 4,
            capacity_bytes: 1 << 30,
            serial_links: 4,
            // 32 vaults at 1024-bit pages, 625 MHz TSV bus: the paper's
            // companion article budgets 10 GB/s per vault.
            vault_bandwidth: 10.0e9,
            // HMC 2.0 short-reach link: 120 GB/s aggregate over 4 links.
            link_bandwidth: 30.0e9,
            interconnect_bits: 256,
            interconnect_hz: 1.0e9,
        }
    }
}

impl HmcConfig {
    /// Aggregate internal DRAM bandwidth (all vaults), bytes/s.
    #[must_use]
    pub fn total_vault_bandwidth(&self) -> f64 {
        f64::from(self.vaults) * self.vault_bandwidth
    }

    /// Aggregate off-cube link bandwidth, bytes/s.
    #[must_use]
    pub fn total_link_bandwidth(&self) -> f64 {
        f64::from(self.serial_links) * self.link_bandwidth
    }

    /// Peak bandwidth of the main LoB interconnect, bytes/s.
    #[must_use]
    pub fn interconnect_bandwidth(&self) -> f64 {
        f64::from(self.interconnect_bits) / 8.0 * self.interconnect_hz
    }

    /// The bandwidth the clusters can actually share: the LoB
    /// interconnect capped by the aggregate vault bandwidth, bytes/s.
    /// This is the ceiling the [`HmcSubsystem`] arbitrates.
    #[must_use]
    pub fn shared_bandwidth(&self) -> f64 {
        self.interconnect_bandwidth()
            .min(self.total_vault_bandwidth())
    }

    /// Bandwidth available to `clusters` clusters, limited by the LoB
    /// interconnect and the aggregate vault bandwidth, bytes/s per
    /// cluster.
    #[must_use]
    pub fn bandwidth_per_cluster(&self, clusters: u32) -> f64 {
        if clusters == 0 {
            return 0.0;
        }
        self.shared_bandwidth() / f64::from(clusters)
    }

    /// A wider LoB interconnect (`bits` wide at the same clock) — the
    /// scale-up knob of the companion paper's saturation study.
    #[must_use]
    pub fn with_interconnect_bits(mut self, bits: u32) -> Self {
        self.interconnect_bits = bits;
        self
    }
}

/// Which external-memory model a multi-cluster system simulates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MemoryModel {
    /// Every cluster owns a private ideal [`ExtMemory`] with the full
    /// AXI-port bandwidth — the pre-contention model, kept as the
    /// timing baseline and data oracle.
    #[default]
    Ideal,
    /// All clusters draw their external-memory slots from the shared
    /// vault/LoB bandwidth of one [`HmcSubsystem`]; data outputs stay
    /// bit-identical to [`MemoryModel::Ideal`], only timing changes.
    SharedHmc(HmcConfig),
    /// Clusters are block-partitioned over the cubes of an
    /// [`HmcMesh`](crate::mesh::HmcMesh): each cube arbitrates only
    /// its attached clusters, and off-home-cube traffic pays the
    /// serial-link clip and hop latency. Data outputs stay
    /// bit-identical to [`MemoryModel::Ideal`], only timing changes.
    HmcMesh(crate::mesh::MeshConfig),
}

/// Fixed-point fraction bits of the slot schedule (Q16: budgets are
/// exact to 1/65536 word per cycle).
pub(crate) const SLOT_FP_BITS: u32 = 16;

/// One cluster's view of the shared subsystem: a stateless, `Copy`
/// grant schedule. [`HmcPort::granted`] is a pure function of the
/// cycle index, so attached clusters never need to synchronise — see
/// the module docs for the fairness construction. The mesh module
/// reuses the same schedule for its remote ports: a private
/// (1-contender) port whose budget is pre-clipped to the minimum of
/// the home cube's LoB share and the serial-link share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HmcPort {
    pub(crate) index: u32,
    pub(crate) ports: u32,
    pub(crate) port_words_per_cycle: u32,
    pub(crate) budget_q16: u64,
    /// Optional fault window `(clip_q16, from, until)`: within
    /// `from..until` the slot budget is multiplied by
    /// `clip_q16 / 2^16`, modelling a degraded serial link. Outside
    /// the window the schedule is untouched.
    pub(crate) degrade: Option<(u32, u64, u64)>,
}

impl HmcPort {
    /// The Q16 slot budget effective at `cycle` — the nominal budget,
    /// clipped inside an armed degradation window.
    fn effective_budget_q16(self, cycle: u64) -> u64 {
        match self.degrade {
            Some((clip, from, until)) if cycle >= from && cycle < until => {
                // Clip what the link can *deliver*, not the raw shared
                // budget — a budget far above the AXI cap would
                // otherwise hide the degradation entirely.
                let cap =
                    (u64::from(self.ports) * u64::from(self.port_words_per_cycle)) << SLOT_FP_BITS;
                let deliverable = self.budget_q16.min(cap);
                ((u128::from(deliverable) * u128::from(clip)) >> SLOT_FP_BITS) as u64
            }
            _ => self.budget_q16,
        }
    }

    /// Word slots the whole subsystem issues during `cycle`: the Q16
    /// budget accumulated over the cycle boundary, so a fractional
    /// budget of e.g. 6.4 words/cycle yields the exact 6/7 slot
    /// pattern over time.
    #[must_use]
    pub fn total_slots(self, cycle: u64) -> u64 {
        let q = u128::from(self.effective_budget_q16(cycle));
        let hi = ((u128::from(cycle) + 1) * q) >> SLOT_FP_BITS;
        let lo = (u128::from(cycle) * q) >> SLOT_FP_BITS;
        (hi - lo) as u64
    }

    /// External-memory word slots granted to this port during `cycle`:
    /// the fair share `slots / ports` plus one remainder slot when the
    /// round-robin rotation `(cycle + index) % ports` selects this
    /// port, capped at the port's own AXI width.
    #[must_use]
    pub fn granted(self, cycle: u64) -> u32 {
        let slots = self.total_slots(cycle);
        let ports = u64::from(self.ports);
        let base = slots / ports;
        let rem = slots % ports;
        let extra = u64::from((cycle + u64::from(self.index)) % ports < rem);
        (base + extra).min(u64::from(self.port_words_per_cycle)) as u32
    }

    /// True when some cycle grants fewer words than the port width —
    /// i.e. the shared budget actually binds. When false the port is
    /// indistinguishable from an ideal private memory and the burst
    /// fast paths skip the slot bookkeeping entirely.
    #[must_use]
    pub fn throttles(self) -> bool {
        let full = u64::from(self.ports) * u64::from(self.port_words_per_cycle);
        if self.budget_q16 < full << SLOT_FP_BITS {
            return true;
        }
        // A degradation window binds even when the nominal budget
        // does not; the burst paths must keep the slot bookkeeping on.
        matches!(self.degrade, Some((clip, from, until))
            if from < until && u64::from(clip) < 1 << SLOT_FP_BITS)
    }

    /// Returns the schedule with a fault window armed: for cycles in
    /// `from..until` the slot budget is clipped to `clip_q16 / 2^16`
    /// of nominal (degraded serial link). Grants stay a pure function
    /// of the cycle index, so the port remains stateless and `Copy`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    #[must_use]
    pub fn degraded(mut self, clip_q16: u32, from: u64, until: u64) -> HmcPort {
        assert!(from < until, "degradation window must be non-empty");
        self.degrade = Some((clip_q16, from, until));
        self
    }

    /// Index of this port within the subsystem.
    #[must_use]
    pub fn index(self) -> u32 {
        self.index
    }

    /// The port's own AXI width (words per cycle) — the hard cap on
    /// any single-cycle grant.
    #[must_use]
    pub fn words_per_cycle(self) -> u32 {
        self.port_words_per_cycle
    }
}

/// The shared external-memory subsystem: the backing stores of every
/// attached cluster plus the per-cycle slot schedule they all draw
/// bandwidth from.
///
/// Each port owns a private byte-addressed image (the LoB steers each
/// cluster's working set to a disjoint vault group, so address spaces
/// do not collide), which callers either access in place
/// ([`HmcSubsystem::mem`] — the standalone multi-DMA tests) or move
/// into their clusters ([`HmcSubsystem::take_memories`] — the
/// `ntx-sched` farm). Bandwidth, unlike storage, is shared: every
/// port's [`HmcPort::granted`] draws from the same
/// [`HmcConfig::shared_bandwidth`] budget.
///
/// # Example
///
/// ```
/// use ntx_mem::hmc::{HmcConfig, HmcSubsystem};
///
/// // Four clusters with 1-word AXI ports sharing the Fig. 1 cube.
/// let sub = HmcSubsystem::new(HmcConfig::default(), 4, 1.25e9, 1);
/// // 32 GB/s LoB at 1.25 GHz = 6.4 shared words per cycle: more than
/// // the four ports can sink, so nobody throttles.
/// assert!((sub.shared_words_per_cycle() - 6.4).abs() < 1e-3);
/// assert!(!sub.port(0).throttles());
/// // At 64 ports the same budget binds hard.
/// let sub = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 1);
/// assert!(sub.port(0).throttles());
/// ```
#[derive(Debug)]
pub struct HmcSubsystem {
    config: HmcConfig,
    pub(crate) ports: u32,
    pub(crate) port_words_per_cycle: u32,
    pub(crate) budget_q16: u64,
    mems: Vec<ExtMemory>,
}

impl HmcSubsystem {
    /// Builds the subsystem for `ports` clusters whose AXI ports move
    /// `port_words_per_cycle` 32-bit words per NTX cycle at
    /// `ntx_freq_hz`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero ports/width, non-positive
    /// clock) or a shared budget that rounds to zero words per cycle
    /// (every port would starve forever).
    #[must_use]
    pub fn new(config: HmcConfig, ports: u32, ntx_freq_hz: f64, port_words_per_cycle: u32) -> Self {
        assert!(ports > 0, "subsystem needs at least one port");
        assert!(
            port_words_per_cycle > 0,
            "ports must move at least one word"
        );
        assert!(ntx_freq_hz > 0.0, "NTX clock must be positive");
        let words_per_cycle = config.shared_bandwidth() / (4.0 * ntx_freq_hz);
        let budget_q16 = (words_per_cycle * f64::from(1u32 << SLOT_FP_BITS)).round() as u64;
        assert!(budget_q16 > 0, "shared budget rounds to zero words/cycle");
        Self {
            config,
            ports,
            port_words_per_cycle,
            budget_q16,
            mems: (0..ports).map(|_| ExtMemory::new()).collect(),
        }
    }

    /// The cube organisation the budget was derived from.
    #[must_use]
    pub fn config(&self) -> &HmcConfig {
        &self.config
    }

    /// Number of attached ports.
    #[must_use]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// The shared slot budget, words per NTX cycle (Q16-rounded).
    #[must_use]
    pub fn shared_words_per_cycle(&self) -> f64 {
        self.budget_q16 as f64 / f64::from(1u32 << SLOT_FP_BITS)
    }

    /// The grant schedule of port `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn port(&self, index: u32) -> HmcPort {
        assert!(index < self.ports, "port index out of range");
        HmcPort {
            index,
            ports: self.ports,
            port_words_per_cycle: self.port_words_per_cycle,
            budget_q16: self.budget_q16,
            degrade: None,
        }
    }

    /// The work-conserving grant schedule of port `index` when only
    /// the ports in `active` are streaming: every cycle's slots are
    /// divided across the active set alone, so an idle port's share is
    /// redistributed within the same cycle instead of wasted. With
    /// every port active this is exactly [`HmcSubsystem::port`]; with a
    /// single active port it receives the full shared pipe, capped at
    /// its own AXI width.
    ///
    /// The demand vector is an explicit *static* input — grants stay a
    /// pure function of `(cycle, port, active, budget)`, so clusters
    /// that agree on the active set up front still simulate
    /// independently without negotiating at run time.
    ///
    /// # Panics
    ///
    /// Panics unless `active` is strictly increasing, within range, and
    /// contains `index`.
    #[must_use]
    pub fn port_among(&self, index: u32, active: &[u32]) -> HmcPort {
        assert!(!active.is_empty(), "active set must name at least one port");
        assert!(
            active.windows(2).all(|w| w[0] < w[1]),
            "active set must be strictly increasing"
        );
        assert!(
            *active.last().unwrap() < self.ports,
            "active port index out of range"
        );
        let rank = active
            .binary_search(&index)
            .expect("index must be in the active set") as u32;
        HmcPort {
            index: rank,
            ports: active.len() as u32,
            port_words_per_cycle: self.port_words_per_cycle,
            budget_q16: self.budget_q16,
            degrade: None,
        }
    }

    /// Mutable access to the backing store of port `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (or its store was taken).
    pub fn mem(&mut self, index: u32) -> &mut ExtMemory {
        &mut self.mems[index as usize]
    }

    /// Moves the backing stores out (one per port, in port order) so a
    /// cluster farm can install them behind its AXI ports; the
    /// subsystem keeps arbitrating the bandwidth.
    pub fn take_memories(&mut self) -> Vec<ExtMemory> {
        std::mem::take(&mut self.mems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pool workers own the clusters — and through them the attached
    /// HMC ports — on other threads; both halves must stay `Send`.
    #[test]
    fn hmc_ports_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<HmcPort>();
        assert_send::<HmcSubsystem>();
    }

    #[test]
    fn default_matches_figure_1() {
        let h = HmcConfig::default();
        assert_eq!(h.vaults, 32);
        assert_eq!(h.dram_dies, 4);
        assert_eq!(h.capacity_bytes, 1 << 30);
        assert_eq!(h.serial_links, 4);
    }

    #[test]
    fn interconnect_bandwidth_is_32_gbs() {
        let h = HmcConfig::default();
        assert!((h.interconnect_bandwidth() - 32.0e9).abs() < 1.0);
    }

    #[test]
    fn per_cluster_share_decreases() {
        let h = HmcConfig::default();
        let one = h.bandwidth_per_cluster(1);
        let four = h.bandwidth_per_cluster(4);
        assert!((one / four - 4.0).abs() < 1e-9);
        assert_eq!(h.bandwidth_per_cluster(0), 0.0);
    }

    #[test]
    fn vault_bandwidth_dominates_links() {
        let h = HmcConfig::default();
        assert!(h.total_vault_bandwidth() > h.total_link_bandwidth());
    }

    #[test]
    fn shared_bandwidth_is_the_binding_ceiling() {
        // Fig. 1: the 32 GB/s LoB interconnect binds long before the
        // 320 GB/s of aggregate vault bandwidth.
        let h = HmcConfig::default();
        assert!((h.total_vault_bandwidth() - 320.0e9).abs() < 1.0);
        assert!((h.shared_bandwidth() - 32.0e9).abs() < 1.0);
        // A hypothetical 4096-bit interconnect flips the cap to the
        // vaults.
        let wide = h.with_interconnect_bits(16384);
        assert!((wide.interconnect_bandwidth() - 2048.0e9).abs() < 1.0);
        assert!((wide.shared_bandwidth() - 320.0e9).abs() < 1.0);
        assert!(
            (wide.bandwidth_per_cluster(64) - 5.0e9).abs() < 1.0,
            "vault cap split 64 ways"
        );
    }

    #[test]
    fn fractional_budget_is_scheduled_exactly() {
        // 32 GB/s over 4-byte words at 1.25 GHz = 6.4 words/cycle: the
        // slot counts per cycle must alternate 6/7 and average 6.4.
        let sub = HmcSubsystem::new(HmcConfig::default(), 8, 1.25e9, 1);
        let p = sub.port(0);
        let window = 1000u64;
        let total: u64 = (0..window).map(|t| p.total_slots(t)).sum();
        assert!((total as f64 / window as f64 - 6.4).abs() < 1e-2);
        for t in 0..window {
            let s = p.total_slots(t);
            assert!(s == 6 || s == 7, "cycle {t} issued {s} slots");
        }
    }

    #[test]
    fn grants_are_fair_and_deterministic() {
        // 64 streaming ports on the 6.4-word budget: each must receive
        // ~1/64 of the shared slots, and the schedule must be a pure
        // function of (cycle, port).
        let sub = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 1);
        let window = 64 * 100u64;
        let mut per_port = vec![0u64; 64];
        let mut issued = 0u64;
        for t in 0..window {
            issued += sub.port(0).total_slots(t);
            for (i, w) in per_port.iter_mut().enumerate() {
                *w += u64::from(sub.port(i as u32).granted(t));
            }
        }
        let granted: u64 = per_port.iter().sum();
        assert_eq!(granted, issued, "every issued slot lands on one port");
        let fair = issued as f64 / 64.0;
        for (i, &w) in per_port.iter().enumerate() {
            assert!(
                (w as f64 - fair).abs() <= 1.0,
                "port {i} got {w} of fair {fair:.1}"
            );
        }
        // Determinism: a rebuilt subsystem reproduces the schedule.
        let again = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 1);
        for t in 0..200 {
            assert_eq!(sub.port(7).granted(t), again.port(7).granted(t));
        }
    }

    #[test]
    fn remainder_slots_rotate_round_robin() {
        // 3 ports sharing exactly 1 word/cycle: each cycle's single
        // slot must land on the port with (cycle + index) % ports == 0,
        // i.e. the deterministic rotation 0, 2, 1, 0, 2, 1, ...
        let cfg = HmcConfig::default().with_interconnect_bits(32); // 1 word/cycle at 1 GHz
        let sub = HmcSubsystem::new(cfg, 3, 1.0e9, 1);
        let winners: Vec<u32> = (0..6u64)
            .map(|t| {
                let w: Vec<u32> = (0..3).filter(|&i| sub.port(i).granted(t) > 0).collect();
                assert_eq!(w.len(), 1, "exactly one winner per cycle");
                w[0]
            })
            .collect();
        assert_eq!(winners, vec![0, 2, 1, 0, 2, 1]);
    }

    #[test]
    fn uncontended_port_never_throttles() {
        let sub = HmcSubsystem::new(HmcConfig::default(), 4, 1.25e9, 1);
        let p = sub.port(2);
        assert!(!p.throttles());
        for t in 0..1000 {
            assert_eq!(p.granted(t), 1);
        }
    }

    #[test]
    fn lone_active_port_receives_full_pipe() {
        // 64 attached ports, but only one is streaming: the
        // work-conserving schedule must hand it every issued slot
        // (capped at its AXI width) instead of the 1/64 fair share the
        // saturated schedule would give it.
        let sub = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 8);
        let lone = sub.port_among(17, &[17]);
        let window = 1000u64;
        let mut granted = 0u64;
        let mut issued = 0u64;
        for t in 0..window {
            issued += lone.total_slots(t);
            granted += u64::from(lone.granted(t));
        }
        assert_eq!(granted, issued, "lone port must drain the full budget");
        assert!((granted as f64 / window as f64 - 6.4).abs() < 1e-2);
        // The saturated schedule throttles the same port to ~0.1 w/c.
        let shared: u64 = (0..window)
            .map(|t| u64::from(sub.port(17).granted(t)))
            .sum();
        assert!(
            shared < granted / 32,
            "fair share is far below the full pipe"
        );
        // The port's own AXI width still caps the grant: a 1-word port
        // cannot sink more than 1 word/cycle even when alone.
        let narrow = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 1);
        let lone = narrow.port_among(5, &[5]);
        for t in 0..window {
            assert_eq!(lone.granted(t), 1);
        }
        assert!(!lone.throttles(), "a lone 1-word port is uncontended");
    }

    #[test]
    fn all_active_demand_reproduces_saturated_schedule() {
        // Declaring every port active is bitwise the PR 5 saturated
        // schedule — the farm relies on this to keep its default
        // demand vector backwards-compatible.
        let sub = HmcSubsystem::new(HmcConfig::default(), 8, 1.25e9, 2);
        let all: Vec<u32> = (0..8).collect();
        for i in 0..8 {
            assert_eq!(sub.port_among(i, &all), sub.port(i));
        }
    }

    #[test]
    fn subset_demand_is_work_conserving_and_fair() {
        // Three of 64 ports active: every issued slot must land on one
        // of them, split fairly, regardless of which indices they are.
        let sub = HmcSubsystem::new(HmcConfig::default(), 64, 1.25e9, 8);
        let active = [3u32, 9, 31];
        let window = 3 * 500u64;
        let mut per_port = vec![0u64; active.len()];
        let mut issued = 0u64;
        for t in 0..window {
            issued += sub.port(0).total_slots(t);
            for (w, &i) in per_port.iter_mut().zip(&active) {
                *w += u64::from(sub.port_among(i, &active).granted(t));
            }
        }
        let granted: u64 = per_port.iter().sum();
        assert_eq!(granted, issued, "no slot is wasted on idle ports");
        let fair = issued as f64 / active.len() as f64;
        for (&i, &w) in active.iter().zip(&per_port) {
            assert!(
                (w as f64 - fair).abs() <= 1.0,
                "port {i} got {w} of fair {fair:.1}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "active set")]
    fn port_among_rejects_unsorted_demand() {
        let sub = HmcSubsystem::new(HmcConfig::default(), 8, 1.25e9, 1);
        let _ = sub.port_among(3, &[3, 1]);
    }

    #[test]
    fn degraded_window_clips_grants_then_recovers() {
        // A lone uncontended port: full width outside the window,
        // half the slots inside a 50% clip window.
        let sub = HmcSubsystem::new(HmcConfig::default(), 1, 1.25e9, 2);
        let nominal = sub.port(0);
        let faulty = nominal.degraded(0x8000, 100, 300);
        assert!(faulty.throttles(), "a clipped window must bind");
        let sum = |p: super::HmcPort, lo: u64, hi: u64| -> u64 {
            (lo..hi).map(|t| u64::from(p.granted(t))).sum()
        };
        // Identical outside the window...
        assert_eq!(sum(faulty, 0, 100), sum(nominal, 0, 100));
        assert_eq!(sum(faulty, 300, 400), sum(nominal, 300, 400));
        // ...and at most half the nominal slots inside it.
        let inside = sum(faulty, 100, 300);
        let nominal_inside = sum(nominal, 100, 300);
        assert!(
            inside * 2 <= nominal_inside + 2,
            "clipped window granted {inside} of {nominal_inside}"
        );
        assert!(inside > 0, "a 50% clip must not starve the port");
        // Same plan, same schedule: grants are a pure cycle function.
        let again = nominal.degraded(0x8000, 100, 300);
        for t in 0..400 {
            assert_eq!(faulty.granted(t), again.granted(t));
        }
    }

    #[test]
    fn backing_stores_are_per_port_and_takeable() {
        let mut sub = HmcSubsystem::new(HmcConfig::default(), 2, 1.25e9, 1);
        sub.mem(0).write_f32(0x40, 1.5);
        sub.mem(1).write_f32(0x40, -2.5);
        assert_eq!(sub.mem(0).read_f32(0x40), 1.5);
        let mut mems = sub.take_memories();
        assert_eq!(mems.len(), 2);
        assert_eq!(mems[1].read_f32(0x40), -2.5);
    }
}
