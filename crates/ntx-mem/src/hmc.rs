//! Hybrid Memory Cube organisation parameters (Fig. 1).
//!
//! The paper's full system attaches `m` processing clusters to the main
//! interconnect on the Logic Base (LoB) of an HMC 2.0 device: 4 DRAM
//! dies, 32 vaults, 1 GB capacity, four serial links off-cube, and a
//! 256-bit main interconnect at 1 GHz. These constants feed the
//! system-level performance and energy models in `ntx-model`; the
//! cycle simulator abstracts the cube behind its AXI port.

/// Organisation of one HMC device and its LoB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmcConfig {
    /// Number of DRAM vaults (and vault controllers on the LoB).
    pub vaults: u32,
    /// Number of stacked DRAM dies.
    pub dram_dies: u32,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Serial links leaving the cube.
    pub serial_links: u32,
    /// Peak bandwidth of one vault controller, bytes/s.
    pub vault_bandwidth: f64,
    /// Peak bandwidth of one serial link, bytes/s.
    pub link_bandwidth: f64,
    /// Main LoB interconnect width in bits.
    pub interconnect_bits: u32,
    /// Main LoB interconnect clock in Hz.
    pub interconnect_hz: f64,
}

impl Default for HmcConfig {
    /// The HMC 2.0 configuration of Fig. 1.
    fn default() -> Self {
        Self {
            vaults: 32,
            dram_dies: 4,
            capacity_bytes: 1 << 30,
            serial_links: 4,
            // 32 vaults at 1024-bit pages, 625 MHz TSV bus: the paper's
            // companion article budgets 10 GB/s per vault.
            vault_bandwidth: 10.0e9,
            // HMC 2.0 short-reach link: 120 GB/s aggregate over 4 links.
            link_bandwidth: 30.0e9,
            interconnect_bits: 256,
            interconnect_hz: 1.0e9,
        }
    }
}

impl HmcConfig {
    /// Aggregate internal DRAM bandwidth (all vaults), bytes/s.
    #[must_use]
    pub fn total_vault_bandwidth(&self) -> f64 {
        f64::from(self.vaults) * self.vault_bandwidth
    }

    /// Aggregate off-cube link bandwidth, bytes/s.
    #[must_use]
    pub fn total_link_bandwidth(&self) -> f64 {
        f64::from(self.serial_links) * self.link_bandwidth
    }

    /// Peak bandwidth of the main LoB interconnect, bytes/s.
    #[must_use]
    pub fn interconnect_bandwidth(&self) -> f64 {
        f64::from(self.interconnect_bits) / 8.0 * self.interconnect_hz
    }

    /// Bandwidth available to `clusters` clusters, limited by the LoB
    /// interconnect and the aggregate vault bandwidth, bytes/s per
    /// cluster.
    #[must_use]
    pub fn bandwidth_per_cluster(&self, clusters: u32) -> f64 {
        if clusters == 0 {
            return 0.0;
        }
        self.interconnect_bandwidth()
            .min(self.total_vault_bandwidth())
            / f64::from(clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure_1() {
        let h = HmcConfig::default();
        assert_eq!(h.vaults, 32);
        assert_eq!(h.dram_dies, 4);
        assert_eq!(h.capacity_bytes, 1 << 30);
        assert_eq!(h.serial_links, 4);
    }

    #[test]
    fn interconnect_bandwidth_is_32_gbs() {
        let h = HmcConfig::default();
        assert!((h.interconnect_bandwidth() - 32.0e9).abs() < 1.0);
    }

    #[test]
    fn per_cluster_share_decreases() {
        let h = HmcConfig::default();
        let one = h.bandwidth_per_cluster(1);
        let four = h.bandwidth_per_cluster(4);
        assert!((one / four - 4.0).abs() < 1e-9);
        assert_eq!(h.bandwidth_per_cluster(0), 0.0);
    }

    #[test]
    fn vault_bandwidth_dominates_links() {
        let h = HmcConfig::default();
        assert!(h.total_vault_bandwidth() > h.total_link_bandwidth());
    }
}
