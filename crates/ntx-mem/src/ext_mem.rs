//! External memory behind the cluster's AXI port.
//!
//! In the paper this is the HMC memory space (DRAM vaults reached
//! through the LoB interconnect, Fig. 1); for kernels executed on a
//! stand-alone cluster it is simply "a DRAM attached to the AXI port"
//! (§III-B). The model provides byte-addressed storage with traffic
//! counters the energy model consumes; bandwidth enforcement happens in
//! the [`DmaEngine`](crate::DmaEngine), which is the only master that
//! touches it in steady state.

/// Byte-addressed external memory with read/write traffic accounting.
///
/// Storage grows on demand (zero-filled), so tests and kernels can use
/// sparse address layouts without preallocating gigabytes.
///
/// # Example
///
/// ```
/// use ntx_mem::ExtMemory;
///
/// let mut mem = ExtMemory::new();
/// mem.write_f32(0x1000, 2.5);
/// assert_eq!(mem.read_f32(0x1000), 2.5);
/// assert_eq!(mem.bytes_written(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExtMemory {
    data: Vec<u8>,
    bytes_read: u64,
    bytes_written: u64,
}

impl ExtMemory {
    /// Creates an empty external memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, end: u64) {
        let end = end as usize;
        if self.data.len() < end {
            // Grow geometrically to keep amortised cost low.
            let new_len = end.next_power_of_two().max(4096);
            self.data.resize(new_len, 0);
        }
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.ensure(addr + buf.len() as u64);
        let a = addr as usize;
        buf.copy_from_slice(&self.data[a..a + buf.len()]);
        self.bytes_read += buf.len() as u64;
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        self.ensure(addr + buf.len() as u64);
        let a = addr as usize;
        self.data[a..a + buf.len()].copy_from_slice(buf);
        self.bytes_written += buf.len() as u64;
    }

    /// Reads a 32-bit word (little endian).
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a 32-bit word (little endian).
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads an `f32`.
    pub fn read_f32(&mut self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Batched, counted read of `out.len()` consecutive words — the DMA
    /// burst path's row fetch; the traffic counter advances by the byte
    /// count, exactly as per-word reads would.
    pub fn read_words_into(&mut self, addr: u64, out: &mut [u32]) {
        self.ensure(addr + 4 * out.len() as u64);
        let a = addr as usize;
        let src = &self.data[a..a + 4 * out.len()];
        for (o, w) in out.iter_mut().zip(src.chunks_exact(4)) {
            *o = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        self.bytes_read += 4 * out.len() as u64;
    }

    /// Batched, counted write of consecutive words (see
    /// [`ExtMemory::read_words_into`]).
    pub fn write_words_from(&mut self, addr: u64, values: &[u32]) {
        self.ensure(addr + 4 * values.len() as u64);
        let a = addr as usize;
        for (w, v) in self.data[a..a + 4 * values.len()]
            .chunks_exact_mut(4)
            .zip(values)
        {
            w.copy_from_slice(&v.to_le_bytes());
        }
        self.bytes_written += 4 * values.len() as u64;
    }

    /// Writes a whole `f32` slice starting at `addr` (test preloading).
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, v);
        }
    }

    /// Reads `n` consecutive `f32` values starting at `addr`.
    pub fn read_f32_slice(&mut self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }

    /// Reads consecutive `f32` values into a caller buffer (counted),
    /// avoiding the per-call `Vec` of [`ExtMemory::read_f32_slice`].
    pub fn read_f32_into(&mut self, addr: u64, out: &mut [f32]) {
        self.ensure(addr + 4 * out.len() as u64);
        let a = addr as usize;
        let src = &self.data[a..a + 4 * out.len()];
        for (o, w) in out.iter_mut().zip(src.chunks_exact(4)) {
            *o = f32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        self.bytes_read += 4 * out.len() as u64;
    }

    /// Total bytes read since the last counter reset (DRAM traffic).
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Total bytes written since the last counter reset (DRAM traffic).
    #[must_use]
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Resets the traffic counters.
    pub fn reset_counters(&mut self) {
        self.bytes_read = 0;
        self.bytes_written = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let mut m = ExtMemory::new();
        m.write_u32(0, 0x0102_0304);
        assert_eq!(m.read_u32(0), 0x0102_0304);
    }

    #[test]
    fn sparse_addresses_grow_on_demand() {
        let mut m = ExtMemory::new();
        m.write_f32(10_000_000, 1.0);
        assert_eq!(m.read_f32(10_000_000), 1.0);
        // Unwritten areas read as zero.
        assert_eq!(m.read_u32(5_000_000), 0);
    }

    #[test]
    fn traffic_counters() {
        let mut m = ExtMemory::new();
        m.write_bytes(0, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut buf = [0u8; 3];
        m.read_bytes(2, &mut buf);
        assert_eq!(buf, [3, 4, 5]);
        assert_eq!(m.bytes_written(), 8);
        assert_eq!(m.bytes_read(), 3);
        m.reset_counters();
        assert_eq!(m.bytes_written(), 0);
    }

    #[test]
    fn slice_helpers() {
        let mut m = ExtMemory::new();
        m.write_f32_slice(64, &[1.0, 2.0, 3.0]);
        assert_eq!(m.read_f32_slice(64, 3), vec![1.0, 2.0, 3.0]);
    }
}
