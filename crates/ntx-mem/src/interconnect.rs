//! The logarithmic interconnect between masters and TCDM banks.
//!
//! §II-A connects processors and co-processors to the banked TCDM
//! through a single-cycle logarithmic interconnect. When two masters
//! address the same bank in the same cycle only one is granted; the
//! other stalls and retries. §III-C: *"the practically achievable
//! compute performance is limited by the probability of a banking
//! conflict in the TCDM interconnect [...] measured to be around 13 %"*.
//!
//! [`Interconnect::arbitrate`] resolves one cycle of requests with
//! per-bank round-robin fairness and keeps the conflict statistics the
//! evaluation reports.

/// Identity of a master port on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MasterId {
    /// The RISC-V core's load/store unit.
    Core,
    /// The cluster DMA engine.
    Dma,
    /// NTX co-processor `n` (0-based).
    Ntx(usize),
}

impl MasterId {
    /// Dense index used for round-robin bookkeeping.
    #[must_use]
    fn dense(self) -> usize {
        match self {
            MasterId::Core => 0,
            MasterId::Dma => 1,
            MasterId::Ntx(n) => 2 + n,
        }
    }
}

/// One bank access request for the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRequest {
    /// Requesting master.
    pub master: MasterId,
    /// Byte address of the access (the arbiter only looks at the bank).
    pub addr: u32,
}

/// Round-robin bank arbiter with conflict statistics.
///
/// # Example
///
/// ```
/// use ntx_mem::{BankRequest, Interconnect, MasterId};
///
/// let mut ic = Interconnect::new(32);
/// // Two masters hitting bank 0 in the same cycle: one wins.
/// let grants = ic.arbitrate(&[
///     BankRequest { master: MasterId::Ntx(0), addr: 0x00 },
///     BankRequest { master: MasterId::Ntx(1), addr: 0x80 }, // bank 0 too
/// ]);
/// assert_eq!(grants.iter().filter(|&&g| g).count(), 1);
/// assert_eq!(ic.conflicts(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    banks: u32,
    /// Per-bank round-robin pointer over dense master indices.
    rr: Vec<usize>,
    requests: u64,
    grants: u64,
    conflicts: u64,
}

impl Interconnect {
    /// Creates an arbiter for `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "interconnect needs at least one bank");
        Self {
            banks,
            rr: vec![0; banks as usize],
            requests: 0,
            grants: 0,
            conflicts: 0,
        }
    }

    /// Resolves one cycle of bank requests. Returns a grant flag per
    /// request (same order). Each bank grants exactly one request; among
    /// contenders the one whose dense master index follows the bank's
    /// round-robin pointer wins, and the pointer moves past the winner.
    pub fn arbitrate(&mut self, requests: &[BankRequest]) -> Vec<bool> {
        let mut granted = vec![false; requests.len()];
        // Group request indices by bank. Banks are few; a simple bucket
        // walk keeps this allocation-light relative to the sim loop.
        let mut by_bank: Vec<Vec<usize>> = vec![Vec::new(); self.banks as usize];
        for (i, req) in requests.iter().enumerate() {
            let bank = ((req.addr / 4) % self.banks) as usize;
            by_bank[bank].push(i);
        }
        for (bank, contenders) in by_bank.iter().enumerate() {
            if contenders.is_empty() {
                continue;
            }
            self.requests += contenders.len() as u64;
            // Pick the contender whose dense index follows the pointer
            // most closely (strictly after it, wrapping around).
            let ptr = self.rr[bank];
            let winner = *contenders
                .iter()
                .min_by_key(|&&i| {
                    let d = requests[i].master.dense();
                    if d > ptr {
                        d - ptr
                    } else {
                        d + 1024 - ptr
                    }
                })
                .expect("non-empty contenders");
            granted[winner] = true;
            self.grants += 1;
            self.conflicts += contenders.len() as u64 - 1;
            self.rr[bank] = requests[winner].master.dense();
        }
        granted
    }

    /// Total requests observed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total grants issued.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total conflicts (requests denied because another master held the
    /// bank that cycle).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Fraction of requests that were denied — the §III-C banking-
    /// conflict probability (≈0.13 on the paper's 3×3 convolution).
    #[must_use]
    pub fn conflict_probability(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.requests as f64
        }
    }

    /// Resets the statistics counters.
    pub fn reset_counters(&mut self) {
        self.requests = 0;
        self.grants = 0;
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(master: MasterId, addr: u32) -> BankRequest {
        BankRequest { master, addr }
    }

    #[test]
    fn disjoint_banks_all_granted() {
        let mut ic = Interconnect::new(32);
        let grants = ic.arbitrate(&[
            req(MasterId::Ntx(0), 0x00),
            req(MasterId::Ntx(1), 0x04),
            req(MasterId::Dma, 0x08),
        ]);
        assert_eq!(grants, vec![true, true, true]);
        assert_eq!(ic.conflicts(), 0);
        assert_eq!(ic.conflict_probability(), 0.0);
    }

    #[test]
    fn same_bank_conflicts() {
        let mut ic = Interconnect::new(32);
        let grants = ic.arbitrate(&[
            req(MasterId::Ntx(0), 0x00),
            req(MasterId::Ntx(1), 0x80),
            req(MasterId::Ntx(2), 0x100),
        ]);
        assert_eq!(grants.iter().filter(|&&g| g).count(), 1);
        assert_eq!(ic.conflicts(), 2);
    }

    #[test]
    fn round_robin_rotates_winners() {
        let mut ic = Interconnect::new(32);
        let reqs = [req(MasterId::Ntx(0), 0x00), req(MasterId::Ntx(1), 0x80)];
        let g1 = ic.arbitrate(&reqs);
        let g2 = ic.arbitrate(&reqs);
        // The two cycles must grant different masters.
        assert_ne!(g1, g2);
        let g3 = ic.arbitrate(&reqs);
        assert_eq!(g1, g3);
    }

    #[test]
    fn no_starvation_under_sustained_contention() {
        let mut ic = Interconnect::new(32);
        let reqs: Vec<BankRequest> = (0..8).map(|n| req(MasterId::Ntx(n), 0x00)).collect();
        let mut wins = [0u32; 8];
        for _ in 0..80 {
            let grants = ic.arbitrate(&reqs);
            for (n, &g) in grants.iter().enumerate() {
                if g {
                    wins[n] += 1;
                }
            }
        }
        for (n, &w) in wins.iter().enumerate() {
            assert_eq!(w, 10, "master {n} should win exactly 1/8 of cycles");
        }
    }

    #[test]
    fn statistics_accumulate() {
        let mut ic = Interconnect::new(4);
        ic.arbitrate(&[req(MasterId::Core, 0), req(MasterId::Dma, 0)]);
        assert_eq!(ic.requests(), 2);
        assert_eq!(ic.grants(), 1);
        assert_eq!(ic.conflict_probability(), 0.5);
        ic.reset_counters();
        assert_eq!(ic.requests(), 0);
    }

    #[test]
    fn empty_cycle_is_free() {
        let mut ic = Interconnect::new(8);
        let grants = ic.arbitrate(&[]);
        assert!(grants.is_empty());
        assert_eq!(ic.requests(), 0);
    }
}
