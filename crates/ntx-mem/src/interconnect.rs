//! The logarithmic interconnect between masters and TCDM banks.
//!
//! §II-A connects processors and co-processors to the banked TCDM
//! through a single-cycle logarithmic interconnect. When two masters
//! address the same bank in the same cycle only one is granted; the
//! other stalls and retries. §III-C: *"the practically achievable
//! compute performance is limited by the probability of a banking
//! conflict in the TCDM interconnect [...] measured to be around 13 %"*.
//!
//! [`Interconnect::arbitrate`] resolves one cycle of requests with
//! per-bank round-robin fairness and keeps the conflict statistics the
//! evaluation reports.

/// Identity of a master port on the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MasterId {
    /// The RISC-V core's load/store unit.
    Core,
    /// The cluster DMA engine.
    Dma,
    /// NTX co-processor `n` (0-based).
    Ntx(usize),
}

impl MasterId {
    /// Dense index used for round-robin bookkeeping.
    #[must_use]
    #[inline]
    fn dense(self) -> usize {
        match self {
            MasterId::Core => 0,
            MasterId::Dma => 1,
            MasterId::Ntx(n) => 2 + n,
        }
    }
}

/// One bank access request for the current cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankRequest {
    /// Requesting master.
    pub master: MasterId,
    /// Byte address of the access (the arbiter only looks at the bank).
    pub addr: u32,
}

/// Round-robin bank arbiter with conflict statistics.
///
/// # Example
///
/// ```
/// use ntx_mem::{BankRequest, Interconnect, MasterId};
///
/// let mut ic = Interconnect::new(32);
/// // Two masters hitting bank 0 in the same cycle: one wins.
/// let grants = ic.arbitrate(&[
///     BankRequest { master: MasterId::Ntx(0), addr: 0x00 },
///     BankRequest { master: MasterId::Ntx(1), addr: 0x80 }, // bank 0 too
/// ]);
/// assert_eq!(grants.iter().filter(|&&g| g).count(), 1);
/// assert_eq!(ic.conflicts(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Interconnect {
    banks: u32,
    /// `banks - 1` when the bank count is a power of two, letting the
    /// hot-loop bank decode be a shift-and-mask instead of a division;
    /// 0 otherwise.
    bank_mask: u32,
    /// Per-bank round-robin pointer over dense master indices.
    rr: Vec<usize>,
    requests: u64,
    grants: u64,
    conflicts: u64,
    /// Reusable per-bank provisional-winner indices for
    /// [`Interconnect::arbitrate_into`] (`usize::MAX` = no requester
    /// yet), reset lazily via `scratch_touched`.
    scratch_head: Vec<usize>,
    /// Round-robin key of each bank's provisional winner.
    scratch_tail: Vec<usize>,
    scratch_touched: Vec<usize>,
}

impl Interconnect {
    /// Creates an arbiter for `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "interconnect needs at least one bank");
        Self {
            banks,
            bank_mask: if banks.is_power_of_two() {
                banks - 1
            } else {
                0
            },
            rr: vec![0; banks as usize],
            requests: 0,
            grants: 0,
            conflicts: 0,
            scratch_head: vec![usize::MAX; banks as usize],
            scratch_tail: vec![usize::MAX; banks as usize],
            scratch_touched: Vec::new(),
        }
    }

    #[inline]
    fn bank_of(&self, addr: u32) -> usize {
        if self.bank_mask != 0 {
            ((addr >> 2) & self.bank_mask) as usize
        } else {
            ((addr / 4) % self.banks) as usize
        }
    }

    /// Accounts one granted, uncontended access: the round-robin
    /// pointer of the addressed bank moves to `master`, exactly as an
    /// [`Interconnect::arbitrate`] grant would. The caller is
    /// responsible for having proven the cycle conflict-free and for
    /// bulk-advancing the request/grant statistics via
    /// [`Interconnect::record_uncontended`].
    #[inline]
    pub fn note_grant(&mut self, addr: u32, master: MasterId) {
        let bank = self.bank_of(addr);
        self.rr[bank] = master.dense();
    }

    /// Bulk-advances the statistics for `n` granted, uncontended
    /// requests (companion of [`Interconnect::note_grant`]).
    #[inline]
    pub fn record_uncontended(&mut self, n: u64) {
        self.requests += n;
        self.grants += n;
    }

    /// Round-robin distance of dense index `d` after pointer `ptr`.
    fn rr_key(d: usize, ptr: usize) -> usize {
        if d > ptr {
            d - ptr
        } else {
            d + 1024 - ptr
        }
    }

    /// Resolves one cycle of bank requests. Returns a grant flag per
    /// request (same order). Each bank grants exactly one request; among
    /// contenders the one whose dense master index follows the bank's
    /// round-robin pointer wins, and the pointer moves past the winner.
    ///
    /// This is the *reference* arbiter: it allocates its bucket lists
    /// per call and defines the semantics the allocation-free fast-path
    /// variants ([`Interconnect::arbitrate_into`],
    /// [`Interconnect::arbitrate_sole`], [`Interconnect::grant_stream`])
    /// must reproduce bit-exactly (grants, statistics and round-robin
    /// state alike; see the equivalence proptests).
    pub fn arbitrate(&mut self, requests: &[BankRequest]) -> Vec<bool> {
        let mut granted = vec![false; requests.len()];
        // Group request indices by bank. Banks are few; a simple bucket
        // walk keeps this allocation-light relative to the sim loop.
        let mut by_bank: Vec<Vec<usize>> = vec![Vec::new(); self.banks as usize];
        for (i, req) in requests.iter().enumerate() {
            let bank = ((req.addr / 4) % self.banks) as usize;
            by_bank[bank].push(i);
        }
        for (bank, contenders) in by_bank.iter().enumerate() {
            if contenders.is_empty() {
                continue;
            }
            self.requests += contenders.len() as u64;
            // Pick the contender whose dense index follows the pointer
            // most closely (strictly after it, wrapping around).
            let ptr = self.rr[bank];
            let winner = *contenders
                .iter()
                .min_by_key(|&&i| Self::rr_key(requests[i].master.dense(), ptr))
                .expect("non-empty contenders");
            granted[winner] = true;
            self.grants += 1;
            self.conflicts += contenders.len() as u64 - 1;
            self.rr[bank] = requests[winner].master.dense();
        }
        granted
    }

    /// Allocation-free equivalent of [`Interconnect::arbitrate`]: writes
    /// the grant flags into `granted` (cleared and resized) using
    /// internal scratch buffers. A conflict-free cycle is detected with
    /// a single bank-mask pass and granted wholesale; contended cycles
    /// run the same bucket walk as the reference arbiter.
    #[inline]
    pub fn arbitrate_into(&mut self, requests: &[BankRequest], granted: &mut Vec<bool>) {
        granted.clear();
        granted.resize(requests.len(), false);
        if requests.is_empty() {
            return;
        }
        // Fast pre-pass: banks fit a u64 occupancy mask on realistic
        // geometries; no duplicate bank means every request is granted.
        if self.banks <= 64 {
            let mut mask = 0u64;
            let mut dup = false;
            for req in requests {
                let bit = 1u64 << self.bank_of(req.addr);
                if mask & bit != 0 {
                    dup = true;
                    break;
                }
                mask |= bit;
            }
            if !dup {
                self.requests += requests.len() as u64;
                self.grants += requests.len() as u64;
                for (g, req) in granted.iter_mut().zip(requests) {
                    *g = true;
                    let bank = self.bank_of(req.addr);
                    self.rr[bank] = req.master.dense();
                }
                return;
            }
        }
        // Contended cycle: one pass tracking the provisional winner per
        // bank (`scratch_head` holds its request index, `scratch_next`
        // its round-robin key, both reset lazily via the touched list).
        // A later contender with a strictly smaller key displaces the
        // provisional winner — the same outcome as the reference
        // `min_by_key` with its first-minimum tie-breaking.
        while let Some(bank) = self.scratch_touched.pop() {
            self.scratch_head[bank] = usize::MAX;
        }
        self.requests += requests.len() as u64;
        let mut granted_count = 0u64;
        for (i, req) in requests.iter().enumerate() {
            let bank = self.bank_of(req.addr);
            let key = Self::rr_key(req.master.dense(), self.rr[bank]);
            let head = self.scratch_head[bank];
            if head == usize::MAX {
                self.scratch_head[bank] = i;
                self.scratch_next_key_set(bank, key);
                self.scratch_touched.push(bank);
                granted[i] = true;
                granted_count += 1;
            } else if key < self.scratch_next_key(bank) {
                granted[head] = false;
                granted[i] = true;
                self.scratch_head[bank] = i;
                self.scratch_next_key_set(bank, key);
            }
        }
        self.grants += granted_count;
        self.conflicts += requests.len() as u64 - granted_count;
        for t in 0..self.scratch_touched.len() {
            let bank = self.scratch_touched[t];
            self.rr[bank] = requests[self.scratch_head[bank]].master.dense();
        }
    }

    /// Per-bank round-robin key of the provisional winner (reuses the
    /// `scratch_tail` slot allocation).
    #[inline]
    fn scratch_next_key(&self, bank: usize) -> usize {
        self.scratch_tail[bank]
    }

    #[inline]
    fn scratch_next_key_set(&mut self, bank: usize, key: usize) {
        self.scratch_tail[bank] = key;
    }

    /// Arbitrates one cycle in which `master` is the only requester,
    /// writing grants for `addrs` into `granted` (same length). With a
    /// single master the outcome is deterministic: the first request per
    /// bank wins, later same-bank requests are denied. Counters and
    /// round-robin state advance exactly as under
    /// [`Interconnect::arbitrate`].
    ///
    /// # Panics
    ///
    /// Panics if `granted` is shorter than `addrs`.
    #[inline]
    pub fn arbitrate_sole(&mut self, master: MasterId, addrs: &[u32], granted: &mut [bool]) {
        let dense = master.dense();
        self.requests += addrs.len() as u64;
        let mut denied = 0u64;
        for (i, &addr) in addrs.iter().enumerate() {
            let bank = self.bank_of(addr);
            let dup = addrs[..i].iter().any(|&a| self.bank_of(a) == bank);
            if dup {
                granted[i] = false;
                denied += 1;
            } else {
                granted[i] = true;
                self.grants += 1;
                self.rr[bank] = dense;
            }
        }
        self.conflicts += denied;
    }

    /// Accounts `n` single-request cycles of a strided access stream of
    /// `master` (one access per cycle at `base + t*stride_bytes`), all
    /// granted — the burst fast path's bulk update. Equivalent to `n`
    /// calls to [`Interconnect::arbitrate`] with one uncontended request
    /// each: `requests`/`grants` advance by `n` and every touched bank's
    /// round-robin pointer ends on `master`.
    pub fn grant_stream(&mut self, master: MasterId, base: u32, stride_bytes: i32, n: u32) {
        if n == 0 {
            return;
        }
        self.requests += u64::from(n);
        self.grants += u64::from(n);
        let dense = master.dense();
        // The stream's bank orbit repeats after at most `banks` steps.
        let steps = n.min(self.banks);
        let mut addr = base;
        for _ in 0..steps {
            let bank = self.bank_of(addr);
            self.rr[bank] = dense;
            addr = addr.wrapping_add(stride_bytes as u32);
        }
    }

    /// Total requests observed.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total grants issued.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total conflicts (requests denied because another master held the
    /// bank that cycle).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Fraction of requests that were denied — the §III-C banking-
    /// conflict probability (≈0.13 on the paper's 3×3 convolution).
    #[must_use]
    pub fn conflict_probability(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.requests as f64
        }
    }

    /// Resets the statistics counters.
    pub fn reset_counters(&mut self) {
        self.requests = 0;
        self.grants = 0;
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(master: MasterId, addr: u32) -> BankRequest {
        BankRequest { master, addr }
    }

    #[test]
    fn disjoint_banks_all_granted() {
        let mut ic = Interconnect::new(32);
        let grants = ic.arbitrate(&[
            req(MasterId::Ntx(0), 0x00),
            req(MasterId::Ntx(1), 0x04),
            req(MasterId::Dma, 0x08),
        ]);
        assert_eq!(grants, vec![true, true, true]);
        assert_eq!(ic.conflicts(), 0);
        assert_eq!(ic.conflict_probability(), 0.0);
    }

    #[test]
    fn same_bank_conflicts() {
        let mut ic = Interconnect::new(32);
        let grants = ic.arbitrate(&[
            req(MasterId::Ntx(0), 0x00),
            req(MasterId::Ntx(1), 0x80),
            req(MasterId::Ntx(2), 0x100),
        ]);
        assert_eq!(grants.iter().filter(|&&g| g).count(), 1);
        assert_eq!(ic.conflicts(), 2);
    }

    #[test]
    fn round_robin_rotates_winners() {
        let mut ic = Interconnect::new(32);
        let reqs = [req(MasterId::Ntx(0), 0x00), req(MasterId::Ntx(1), 0x80)];
        let g1 = ic.arbitrate(&reqs);
        let g2 = ic.arbitrate(&reqs);
        // The two cycles must grant different masters.
        assert_ne!(g1, g2);
        let g3 = ic.arbitrate(&reqs);
        assert_eq!(g1, g3);
    }

    #[test]
    fn no_starvation_under_sustained_contention() {
        let mut ic = Interconnect::new(32);
        let reqs: Vec<BankRequest> = (0..8).map(|n| req(MasterId::Ntx(n), 0x00)).collect();
        let mut wins = [0u32; 8];
        for _ in 0..80 {
            let grants = ic.arbitrate(&reqs);
            for (n, &g) in grants.iter().enumerate() {
                if g {
                    wins[n] += 1;
                }
            }
        }
        for (n, &w) in wins.iter().enumerate() {
            assert_eq!(w, 10, "master {n} should win exactly 1/8 of cycles");
        }
    }

    #[test]
    fn statistics_accumulate() {
        let mut ic = Interconnect::new(4);
        ic.arbitrate(&[req(MasterId::Core, 0), req(MasterId::Dma, 0)]);
        assert_eq!(ic.requests(), 2);
        assert_eq!(ic.grants(), 1);
        assert_eq!(ic.conflict_probability(), 0.5);
        ic.reset_counters();
        assert_eq!(ic.requests(), 0);
    }

    #[test]
    fn empty_cycle_is_free() {
        let mut ic = Interconnect::new(8);
        let grants = ic.arbitrate(&[]);
        assert!(grants.is_empty());
        assert_eq!(ic.requests(), 0);
        let mut buf = Vec::new();
        ic.arbitrate_into(&[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(ic.requests(), 0);
    }

    fn assert_same_state(a: &Interconnect, b: &Interconnect) {
        assert_eq!(a.requests(), b.requests());
        assert_eq!(a.grants(), b.grants());
        assert_eq!(a.conflicts(), b.conflicts());
        assert_eq!(a.rr, b.rr);
    }

    #[test]
    fn arbitrate_into_matches_reference_over_contended_sequence() {
        // Drive both arbiters through identical cycles with heavy
        // same-bank contention; grants, statistics and round-robin
        // state must stay bitwise identical throughout.
        let mut reference = Interconnect::new(4);
        let mut fast = Interconnect::new(4);
        let mut buf = Vec::new();
        for cycle in 0..40u32 {
            let reqs: Vec<BankRequest> = (0..6)
                .map(|n| {
                    req(
                        MasterId::Ntx(n),
                        (cycle.wrapping_mul(12) + n as u32 * 4) % 64,
                    )
                })
                .chain([req(MasterId::Dma, cycle % 16)])
                .collect();
            let expect = reference.arbitrate(&reqs);
            fast.arbitrate_into(&reqs, &mut buf);
            assert_eq!(buf, expect, "cycle {cycle}");
            assert_same_state(&reference, &fast);
        }
    }

    #[test]
    fn arbitrate_sole_matches_reference() {
        let mut reference = Interconnect::new(32);
        let mut fast = Interconnect::new(32);
        // x and y hit the same bank; store hits another: the first
        // same-bank request wins, the duplicate is denied.
        let addrs = [0x00u32, 0x80, 0x04, 0x84];
        let reqs: Vec<BankRequest> = addrs.iter().map(|&a| req(MasterId::Ntx(3), a)).collect();
        let expect = reference.arbitrate(&reqs);
        let mut granted = [false; 4];
        fast.arbitrate_sole(MasterId::Ntx(3), &addrs, &mut granted);
        assert_eq!(granted.to_vec(), expect);
        assert_same_state(&reference, &fast);
    }

    #[test]
    fn grant_stream_matches_cycle_by_cycle_grants() {
        let mut reference = Interconnect::new(32);
        let mut fast = Interconnect::new(32);
        let (base, stride, n) = (0x40u32, 12i32, 100u32);
        let mut addr = base;
        for _ in 0..n {
            let g = reference.arbitrate(&[req(MasterId::Ntx(5), addr)]);
            assert_eq!(g, vec![true]);
            addr = addr.wrapping_add(stride as u32);
        }
        fast.grant_stream(MasterId::Ntx(5), base, stride, n);
        assert_same_state(&reference, &fast);
        // Short streams touch fewer banks than the orbit period.
        let mut reference = Interconnect::new(32);
        let mut fast = Interconnect::new(32);
        reference.arbitrate(&[req(MasterId::Dma, 8)]);
        fast.grant_stream(MasterId::Dma, 8, -4, 1);
        assert_same_state(&reference, &fast);
    }
}
