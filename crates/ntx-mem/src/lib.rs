//! Memory system of the NTX processing cluster.
//!
//! Models the storage hierarchy of Fig. 1 of the paper, from the inside
//! out:
//!
//! * [`Tcdm`] — the 64 kB tightly-coupled data memory, organised as 32
//!   word-interleaved banks with single-cycle access latency (§II-A);
//! * [`Interconnect`] — the logarithmic interconnect arbitrating the
//!   NTX/DMA/core masters onto the banks, one grant per bank per cycle
//!   with round-robin fairness; banking conflicts stall the losing
//!   master (§III-C measures their probability at ≈13 %);
//! * [`DmaEngine`] — the cluster DMA moving two-dimensional planes
//!   between TCDM and external memory through the 64-bit AXI port at
//!   half the NTX clock (5 GB/s peak, §II-A/§III-C);
//! * [`ExtMemory`] — the byte-addressed memory behind the AXI port (the
//!   HMC's DRAM vaults in the paper) with traffic counters;
//! * [`hmc`] — the shared Hybrid Memory Cube subsystem: organisation
//!   parameters for the system-level models, plus the
//!   [`HmcSubsystem`]/[`HmcPort`] per-cycle bandwidth arbiter that
//!   multi-cluster simulations draw their external-memory slots from
//!   (selected via [`MemoryModel`]);
//! * [`mesh`] — the multi-cube scale-out substrate: an [`HmcMesh`] of
//!   per-cube subsystems with home-cube data placement and a
//!   serial-link hop model for remote traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dma;
mod ext_mem;
pub mod hmc;
mod interconnect;
pub mod mesh;
mod tcdm;

pub use dma::{DmaDescriptor, DmaDirection, DmaEngine, ThrottledBurst};
pub use ext_mem::ExtMemory;
pub use hmc::{HmcConfig, HmcPort, HmcSubsystem, MemoryModel};
pub use interconnect::{BankRequest, Interconnect, MasterId};
pub use mesh::{HmcMesh, MeshConfig};
pub use tcdm::{Tcdm, TcdmConfig};
