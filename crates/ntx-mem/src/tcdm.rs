//! The tightly-coupled data memory (TCDM).
//!
//! §II-A: *"Both operate on shared 64 kB TCDM. [...] The memory is
//! divided into 32 banks that are connected to the processors via an
//! interconnect offering single-cycle access latency."*
//!
//! Storage is word-interleaved: consecutive 32-bit words map to
//! consecutive banks, which is what spreads the streaming accesses of
//! the NTX AGUs across the banks.

/// Geometry of the TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcdmConfig {
    /// Total capacity in bytes (paper: 64 kB; [12] used 128 kB).
    pub bytes: u32,
    /// Number of banks (paper: 32).
    pub banks: u32,
}

impl Default for TcdmConfig {
    fn default() -> Self {
        Self {
            bytes: 64 * 1024,
            banks: 32,
        }
    }
}

impl TcdmConfig {
    /// Bank index serving the word at byte address `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.banks
    }
}

/// The TCDM storage array with access counters.
///
/// Addresses wrap at the memory size, matching the address decoder of
/// the cluster (the upper bits select the TCDM region; the lower bits
/// index into it).
///
/// # Example
///
/// ```
/// use ntx_mem::Tcdm;
///
/// let mut tcdm = Tcdm::default();
/// tcdm.write_f32(0x40, 3.25);
/// assert_eq!(tcdm.read_f32(0x40), 3.25);
/// assert_eq!(tcdm.config().bank_of(0x40), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Tcdm {
    config: TcdmConfig,
    data: Vec<u8>,
    /// `bytes - 1` when the capacity is a power of two (the common
    /// geometries), letting the hot-loop address wrap be a mask instead
    /// of a division; 0 otherwise.
    wrap_mask: u32,
    reads: u64,
    writes: u64,
}

impl Default for Tcdm {
    fn default() -> Self {
        Self::new(TcdmConfig::default())
    }
}

impl Tcdm {
    /// Allocates a zero-initialised TCDM.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero, not a multiple of `4 * banks`, or
    /// if `banks` is zero.
    #[must_use]
    pub fn new(config: TcdmConfig) -> Self {
        assert!(config.banks > 0, "TCDM needs at least one bank");
        assert!(
            config.bytes > 0 && config.bytes.is_multiple_of(4 * config.banks),
            "TCDM size must be a positive multiple of 4*banks"
        );
        Self {
            config,
            data: vec![0; config.bytes as usize],
            wrap_mask: if config.bytes.is_power_of_two() {
                config.bytes - 1
            } else {
                0
            },
            reads: 0,
            writes: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> TcdmConfig {
        self.config
    }

    #[inline]
    fn wrap(&self, addr: u32) -> u32 {
        if self.wrap_mask != 0 {
            addr & self.wrap_mask
        } else {
            addr % self.config.bytes
        }
    }

    #[inline]
    fn index(&self, addr: u32) -> usize {
        self.wrap(addr) as usize
    }

    /// Reads the 32-bit word at `addr` (little endian, counter-visible).
    #[inline]
    pub fn read_u32(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.peek_u32(addr)
    }

    /// Writes the 32-bit word at `addr`.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        let i = self.index(addr & !3);
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    #[inline]
    pub fn read_f32(&mut self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at `addr`.
    #[inline]
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads a byte (used by the RISC-V core's `lb`/`lbu`).
    pub fn read_u8(&mut self, addr: u32) -> u8 {
        self.reads += 1;
        self.data[self.index(addr)]
    }

    /// Writes a byte (used by the RISC-V core's `sb`).
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.writes += 1;
        let i = self.index(addr);
        self.data[i] = value;
    }

    /// Copies `out.len()` consecutive values starting at `addr` out of
    /// the memory, wrapping at capacity — the shared body of every
    /// batched read accessor (`dec` decodes one little-endian word).
    fn copy_out<T>(&self, addr: u32, out: &mut [T], dec: impl Fn([u8; 4]) -> T) {
        let bytes = self.config.bytes;
        let mut a = self.wrap(addr & !3);
        let mut i = 0;
        while i < out.len() {
            let run = (((bytes - a) / 4) as usize).min(out.len() - i);
            let src = &self.data[a as usize..a as usize + 4 * run];
            for (o, w) in out[i..i + run].iter_mut().zip(src.chunks_exact(4)) {
                *o = dec([w[0], w[1], w[2], w[3]]);
            }
            i += run;
            a = 0;
        }
    }

    /// Copies `values` as consecutive words starting at `addr` into the
    /// memory, wrapping at capacity (`enc` encodes one value).
    fn copy_in<T: Copy>(&mut self, addr: u32, values: &[T], enc: impl Fn(T) -> [u8; 4]) {
        let bytes = self.config.bytes;
        let mut a = self.wrap(addr & !3);
        let mut i = 0;
        while i < values.len() {
            let run = (((bytes - a) / 4) as usize).min(values.len() - i);
            let dst = &mut self.data[a as usize..a as usize + 4 * run];
            for (w, &v) in dst.chunks_exact_mut(4).zip(&values[i..i + run]) {
                w.copy_from_slice(&enc(v));
            }
            i += run;
            a = 0;
        }
    }

    /// Batched, counted read of `out.len()` consecutive words — one
    /// slice copy instead of per-word [`Tcdm::read_u32`] calls; the
    /// access counters advance by the word count, exactly as the
    /// per-word path would.
    pub fn read_words_into(&mut self, addr: u32, out: &mut [u32]) {
        self.reads += out.len() as u64;
        self.copy_out(addr, out, u32::from_le_bytes);
    }

    /// Batched, counted write of consecutive words (see
    /// [`Tcdm::read_words_into`]).
    pub fn write_words_from(&mut self, addr: u32, values: &[u32]) {
        self.writes += values.len() as u64;
        self.copy_in(addr, values, u32::to_le_bytes);
    }

    /// Batched, counted read of consecutive `f32` values — the burst
    /// fast path's operand fetch.
    pub fn read_f32_into(&mut self, addr: u32, out: &mut [f32]) {
        self.reads += out.len() as u64;
        self.copy_out(addr, out, f32::from_le_bytes);
    }

    /// Non-counting batched read of consecutive `f32` values (host/test
    /// access, like [`Tcdm::peek_u32`]).
    pub fn peek_f32_into(&self, addr: u32, out: &mut [f32]) {
        self.copy_out(addr, out, f32::from_le_bytes);
    }

    /// Non-counting batched write of consecutive `f32` values (host/test
    /// preloading, like [`Tcdm::poke_u32`]).
    pub fn poke_f32_from(&mut self, addr: u32, values: &[f32]) {
        self.copy_in(addr, values, f32::to_le_bytes);
    }

    /// Non-counting debug read of a word (test harnesses, tracing).
    #[must_use]
    #[inline]
    pub fn peek_u32(&self, addr: u32) -> u32 {
        let i = self.index(addr & !3);
        u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ])
    }

    /// Non-counting debug write of a word (test-bench preloading).
    pub fn poke_u32(&mut self, addr: u32, value: u32) {
        let i = self.index(addr & !3);
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Number of counted read accesses (energy model input).
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of counted write accesses (energy model input).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets the access counters (e.g. between benchmark phases).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let t = Tcdm::default();
        assert_eq!(t.config().bytes, 65_536);
        assert_eq!(t.config().banks, 32);
    }

    #[test]
    fn word_interleaving() {
        let c = TcdmConfig::default();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(4), 1);
        assert_eq!(c.bank_of(4 * 31), 31);
        assert_eq!(c.bank_of(4 * 32), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut t = Tcdm::default();
        t.write_u32(0x123 & !3, 0xdead_beef);
        assert_eq!(t.read_u32(0x120), 0xdead_beef);
        t.write_f32(0x200, -1.5);
        assert_eq!(t.read_f32(0x200), -1.5);
    }

    #[test]
    fn byte_access() {
        let mut t = Tcdm::default();
        t.write_u32(0x10, 0x0403_0201);
        assert_eq!(t.read_u8(0x10), 0x01);
        assert_eq!(t.read_u8(0x13), 0x04);
        t.write_u8(0x11, 0xff);
        assert_eq!(t.read_u32(0x10), 0x0403_ff01);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let mut t = Tcdm::default();
        t.write_u32(0, 7);
        assert_eq!(t.read_u32(65_536), 7);
    }

    #[test]
    fn counters_track_accesses() {
        let mut t = Tcdm::default();
        t.write_u32(0, 1);
        let _ = t.read_u32(0);
        let _ = t.read_u32(4);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        let _ = t.peek_u32(0);
        t.poke_u32(0, 2);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        t.reset_counters();
        assert_eq!(t.reads(), 0);
    }

    #[test]
    fn batched_accessors_match_per_word_path() {
        let mut t = Tcdm::default();
        let values: Vec<f32> = (0..100).map(|i| i as f32 * 0.5 - 10.0).collect();
        // Counted batch write == per-word writes, including wrap-around.
        let base = 65_536 - 40; // wraps after 10 words
        t.write_words_from(
            base,
            &values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(t.writes(), 100);
        let mut out = vec![0f32; 100];
        t.read_f32_into(base, &mut out);
        assert_eq!(out, values);
        assert_eq!(t.reads(), 100);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(t.peek_u32(base.wrapping_add(4 * i as u32)), v.to_bits());
        }
        let mut words = vec![0u32; 100];
        t.read_words_into(base, &mut words);
        assert_eq!(words[3], values[3].to_bits());
        // Non-counting peek/poke round-trip.
        let before = (t.reads(), t.writes());
        t.poke_f32_from(0x100, &values[..8]);
        let mut peeked = [0f32; 8];
        t.peek_f32_into(0x100, &mut peeked);
        assert_eq!(&peeked, &values[..8]);
        assert_eq!((t.reads(), t.writes()), before);
    }

    #[test]
    #[should_panic(expected = "multiple of 4*banks")]
    fn bad_geometry_rejected() {
        let _ = Tcdm::new(TcdmConfig {
            bytes: 100,
            banks: 32,
        });
    }
}
