//! The tightly-coupled data memory (TCDM).
//!
//! §II-A: *"Both operate on shared 64 kB TCDM. [...] The memory is
//! divided into 32 banks that are connected to the processors via an
//! interconnect offering single-cycle access latency."*
//!
//! Storage is word-interleaved: consecutive 32-bit words map to
//! consecutive banks, which is what spreads the streaming accesses of
//! the NTX AGUs across the banks.

/// Geometry of the TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcdmConfig {
    /// Total capacity in bytes (paper: 64 kB; [12] used 128 kB).
    pub bytes: u32,
    /// Number of banks (paper: 32).
    pub banks: u32,
}

impl Default for TcdmConfig {
    fn default() -> Self {
        Self {
            bytes: 64 * 1024,
            banks: 32,
        }
    }
}

impl TcdmConfig {
    /// Bank index serving the word at byte address `addr`.
    #[must_use]
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / 4) % self.banks
    }
}

/// The TCDM storage array with access counters.
///
/// Addresses wrap at the memory size, matching the address decoder of
/// the cluster (the upper bits select the TCDM region; the lower bits
/// index into it).
///
/// # Example
///
/// ```
/// use ntx_mem::Tcdm;
///
/// let mut tcdm = Tcdm::default();
/// tcdm.write_f32(0x40, 3.25);
/// assert_eq!(tcdm.read_f32(0x40), 3.25);
/// assert_eq!(tcdm.config().bank_of(0x40), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Tcdm {
    config: TcdmConfig,
    data: Vec<u8>,
    reads: u64,
    writes: u64,
}

impl Default for Tcdm {
    fn default() -> Self {
        Self::new(TcdmConfig::default())
    }
}

impl Tcdm {
    /// Allocates a zero-initialised TCDM.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero, not a multiple of `4 * banks`, or
    /// if `banks` is zero.
    #[must_use]
    pub fn new(config: TcdmConfig) -> Self {
        assert!(config.banks > 0, "TCDM needs at least one bank");
        assert!(
            config.bytes > 0 && config.bytes.is_multiple_of(4 * config.banks),
            "TCDM size must be a positive multiple of 4*banks"
        );
        Self {
            config,
            data: vec![0; config.bytes as usize],
            reads: 0,
            writes: 0,
        }
    }

    /// The configured geometry.
    #[must_use]
    pub fn config(&self) -> TcdmConfig {
        self.config
    }

    fn index(&self, addr: u32) -> usize {
        (addr % self.config.bytes) as usize
    }

    /// Reads the 32-bit word at `addr` (little endian, counter-visible).
    pub fn read_u32(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.peek_u32(addr)
    }

    /// Writes the 32-bit word at `addr`.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.writes += 1;
        let i = self.index(addr & !3);
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    pub fn read_f32(&mut self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u32, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads a byte (used by the RISC-V core's `lb`/`lbu`).
    pub fn read_u8(&mut self, addr: u32) -> u8 {
        self.reads += 1;
        self.data[self.index(addr)]
    }

    /// Writes a byte (used by the RISC-V core's `sb`).
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.writes += 1;
        let i = self.index(addr);
        self.data[i] = value;
    }

    /// Non-counting debug read of a word (test harnesses, tracing).
    #[must_use]
    pub fn peek_u32(&self, addr: u32) -> u32 {
        let i = self.index(addr & !3);
        u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ])
    }

    /// Non-counting debug write of a word (test-bench preloading).
    pub fn poke_u32(&mut self, addr: u32, value: u32) {
        let i = self.index(addr & !3);
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Number of counted read accesses (energy model input).
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of counted write accesses (energy model input).
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Resets the access counters (e.g. between benchmark phases).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let t = Tcdm::default();
        assert_eq!(t.config().bytes, 65_536);
        assert_eq!(t.config().banks, 32);
    }

    #[test]
    fn word_interleaving() {
        let c = TcdmConfig::default();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(4), 1);
        assert_eq!(c.bank_of(4 * 31), 31);
        assert_eq!(c.bank_of(4 * 32), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut t = Tcdm::default();
        t.write_u32(0x123 & !3, 0xdead_beef);
        assert_eq!(t.read_u32(0x120), 0xdead_beef);
        t.write_f32(0x200, -1.5);
        assert_eq!(t.read_f32(0x200), -1.5);
    }

    #[test]
    fn byte_access() {
        let mut t = Tcdm::default();
        t.write_u32(0x10, 0x0403_0201);
        assert_eq!(t.read_u8(0x10), 0x01);
        assert_eq!(t.read_u8(0x13), 0x04);
        t.write_u8(0x11, 0xff);
        assert_eq!(t.read_u32(0x10), 0x0403_ff01);
    }

    #[test]
    fn addresses_wrap_at_capacity() {
        let mut t = Tcdm::default();
        t.write_u32(0, 7);
        assert_eq!(t.read_u32(65_536), 7);
    }

    #[test]
    fn counters_track_accesses() {
        let mut t = Tcdm::default();
        t.write_u32(0, 1);
        let _ = t.read_u32(0);
        let _ = t.read_u32(4);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        let _ = t.peek_u32(0);
        t.poke_u32(0, 2);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 1);
        t.reset_counters();
        assert_eq!(t.reads(), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 4*banks")]
    fn bad_geometry_rejected() {
        let _ = Tcdm::new(TcdmConfig {
            bytes: 100,
            banks: 32,
        });
    }
}
