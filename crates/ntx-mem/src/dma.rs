//! The cluster DMA engine.
//!
//! §II-A: *"An additional DMA engine allows the transfer of two-
//! dimensional data planes between the TCDM and the HMC's memory
//! space."* §II-E: the cores use it for double buffering so NTX compute
//! and data movement overlap.
//!
//! The engine drains a queue of 2-D descriptors, moving one 32-bit word
//! per granted TCDM access. The AXI port runs 64 bit wide at half the
//! NTX clock (§III-A), i.e. one word per NTX cycle — 5 GB/s at
//! 1.25 GHz — which is exactly the TCDM-side request rate, so a single
//! [`words_per_cycle`](DmaEngine::words_per_cycle) parameter models the
//! port width (2 for the 128-bit, 4 for the 256-bit variant of §III-C).

use crate::ext_mem::ExtMemory;
use crate::hmc::HmcPort;
use crate::interconnect::{Interconnect, MasterId};
use crate::tcdm::Tcdm;
use std::collections::VecDeque;

/// Outcome of one [`DmaEngine::burst_sole_throttled`] call.
///
/// The caller needs both counts because they diverge under a binding
/// bandwidth budget: `cycles` advances the cluster clock, while
/// `active_cycles` (cycles with at least one TCDM request) advances
/// the cluster's busy counter; the difference is the cycles the engine
/// sat waiting for an external-memory slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThrottledBurst {
    /// Cycles consumed (including zero-grant wait cycles).
    pub cycles: u64,
    /// Cycles in which the engine issued at least one TCDM request.
    pub active_cycles: u64,
}

/// Transfer direction of a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// External memory → TCDM (input tile load).
    ExtToTcdm,
    /// TCDM → external memory (result tile store).
    TcdmToExt,
}

/// A two-dimensional DMA transfer descriptor.
///
/// Moves `rows` rows of `row_bytes` bytes each; consecutive rows are
/// `ext_stride` bytes apart on the external side and `tcdm_stride`
/// bytes apart in the TCDM. A 1-D transfer is a descriptor with
/// `rows == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// External-memory base address.
    pub ext_addr: u64,
    /// TCDM base address.
    pub tcdm_addr: u32,
    /// Bytes per row (must be a positive multiple of 4).
    pub row_bytes: u32,
    /// Number of rows (must be positive).
    pub rows: u32,
    /// External-side distance between row starts, in bytes.
    pub ext_stride: u64,
    /// TCDM-side distance between row starts, in bytes.
    pub tcdm_stride: u32,
    /// Transfer direction.
    pub dir: DmaDirection,
}

impl DmaDescriptor {
    /// Convenience 1-D descriptor.
    #[must_use]
    pub fn linear(ext_addr: u64, tcdm_addr: u32, bytes: u32, dir: DmaDirection) -> Self {
        Self {
            ext_addr,
            tcdm_addr,
            row_bytes: bytes,
            rows: 1,
            ext_stride: u64::from(bytes),
            tcdm_stride: bytes,
            dir,
        }
    }

    /// Total payload bytes of the transfer.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.row_bytes) * u64::from(self.rows)
    }

    fn total_words(&self) -> u64 {
        self.total_bytes() / 4
    }

    fn word_addrs(&self, word: u64) -> (u64, u32) {
        let wpr = u64::from(self.row_bytes / 4);
        let row = word / wpr;
        let col = word % wpr;
        (
            self.ext_addr + row * self.ext_stride + col * 4,
            self.tcdm_addr
                .wrapping_add((row as u32).wrapping_mul(self.tcdm_stride))
                .wrapping_add(col as u32 * 4),
        )
    }
}

/// The DMA engine: descriptor queue plus transfer state machine.
///
/// Per simulated cycle the cluster asks for the TCDM addresses the DMA
/// wants ([`DmaEngine::desired_accesses`]), arbitrates them against the
/// NTX/core masters, and calls [`DmaEngine::commit`] with the grant
/// flags. [`DmaEngine::run_to_completion`] is the stand-alone variant
/// used by tests and coarse models, where every access is granted.
///
/// # Example
///
/// ```
/// use ntx_mem::{DmaDescriptor, DmaDirection, DmaEngine, ExtMemory, Tcdm};
///
/// let mut dma = DmaEngine::new(1);
/// let mut tcdm = Tcdm::default();
/// let mut ext = ExtMemory::new();
/// ext.write_f32_slice(0x100, &[1.0, 2.0, 3.0, 4.0]);
/// dma.push(DmaDescriptor::linear(0x100, 0x40, 16, DmaDirection::ExtToTcdm));
/// let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
/// assert_eq!(cycles, 4); // one word per cycle
/// assert_eq!(tcdm.read_f32(0x44), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    queue: VecDeque<DmaDescriptor>,
    current_word: u64,
    words_per_cycle: u32,
    bytes_moved: u64,
    busy_cycles: u64,
    completed: u64,
    /// Reusable word buffer for the burst fast path's row batches.
    scratch: Vec<u32>,
    /// Incremental cursor over the head descriptor (external address,
    /// TCDM address, column of `current_word`), so the per-cycle hot
    /// loop advances by additions instead of re-deriving row/column
    /// with 64-bit divisions.
    cur_ea: u64,
    cur_ta: u32,
    cur_col: u64,
}

impl DmaEngine {
    /// Creates an engine moving up to `words_per_cycle` 32-bit words per
    /// cycle (1 = the paper's 64-bit AXI port at half clock).
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle` is zero.
    #[must_use]
    pub fn new(words_per_cycle: u32) -> Self {
        assert!(words_per_cycle > 0, "DMA must move at least one word");
        Self {
            queue: VecDeque::new(),
            current_word: 0,
            words_per_cycle,
            bytes_moved: 0,
            busy_cycles: 0,
            completed: 0,
            scratch: Vec::new(),
            cur_ea: 0,
            cur_ta: 0,
            cur_col: 0,
        }
    }

    /// Port width in words per cycle.
    #[must_use]
    pub fn words_per_cycle(&self) -> u32 {
        self.words_per_cycle
    }

    /// Enqueues a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor geometry is degenerate (zero rows, zero
    /// or unaligned row bytes, unaligned addresses).
    pub fn push(&mut self, desc: DmaDescriptor) {
        assert!(desc.rows > 0, "descriptor needs at least one row");
        assert!(
            desc.row_bytes > 0 && desc.row_bytes.is_multiple_of(4),
            "row bytes must be a positive multiple of 4"
        );
        assert!(
            desc.ext_addr.is_multiple_of(4) && desc.tcdm_addr.is_multiple_of(4),
            "DMA addresses must be word aligned"
        );
        assert!(
            desc.ext_stride.is_multiple_of(4) && desc.tcdm_stride.is_multiple_of(4),
            "DMA strides must be word aligned"
        );
        self.queue.push_back(desc);
        if self.queue.len() == 1 {
            self.sync_cursor();
        }
    }

    /// Re-derives the incremental cursor from `current_word` (after a
    /// descriptor change or a bulk advance).
    fn sync_cursor(&mut self) {
        if let Some(desc) = self.queue.front() {
            let wpr = u64::from(desc.row_bytes / 4);
            self.cur_col = self.current_word % wpr;
            let (ea, ta) = desc.word_addrs(self.current_word);
            self.cur_ea = ea;
            self.cur_ta = ta;
        }
    }

    /// True when no descriptor is pending or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of descriptors waiting (including the active one).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// TCDM word addresses the engine wants to access this cycle, up to
    /// the port width (fewer near the end of a descriptor; descriptors
    /// do not overlap within a cycle, matching the RTL's serialisation).
    #[must_use]
    pub fn desired_accesses(&self) -> Vec<u32> {
        let mut v = Vec::new();
        self.desired_accesses_into(&mut v);
        v
    }

    /// Allocation-free variant of [`DmaEngine::desired_accesses`]: the
    /// addresses are appended to a cleared caller buffer, which the hot
    /// loop reuses across cycles.
    pub fn desired_accesses_into(&self, out: &mut Vec<u32>) {
        out.clear();
        let Some(desc) = self.queue.front() else {
            return;
        };
        let remaining = desc.total_words() - self.current_word;
        let n = u64::from(self.words_per_cycle).min(remaining);
        debug_assert_eq!(self.cur_ta, desc.word_addrs(self.current_word).1);
        for i in 0..n {
            out.push(if i == 0 {
                self.cur_ta
            } else {
                desc.word_addrs(self.current_word + i).1
            });
        }
    }

    /// Performs the granted transfers for this cycle. `granted[i]`
    /// corresponds to `desired_accesses()[i]`; a prefix-contiguity rule
    /// applies (a denied word blocks the ones behind it, preserving
    /// order). Returns the number of words moved.
    pub fn commit(&mut self, granted: &[bool], tcdm: &mut Tcdm, ext: &mut ExtMemory) -> u32 {
        let Some(desc) = self.queue.front().copied() else {
            return 0;
        };
        let mut moved = 0u32;
        let wpr = u64::from(desc.row_bytes / 4);
        for &g in granted {
            if !g {
                break; // in-order: a stalled beat blocks the rest
            }
            let (ea, ta) = (self.cur_ea, self.cur_ta);
            debug_assert_eq!((ea, ta), desc.word_addrs(self.current_word));
            match desc.dir {
                DmaDirection::ExtToTcdm => {
                    let w = ext.read_u32(ea);
                    tcdm.write_u32(ta, w);
                }
                DmaDirection::TcdmToExt => {
                    let w = tcdm.read_u32(ta);
                    ext.write_u32(ea, w);
                }
            }
            self.current_word += 1;
            self.cur_col += 1;
            if self.cur_col == wpr {
                // Next row start.
                self.cur_col = 0;
                self.cur_ea = self
                    .cur_ea
                    .wrapping_add(desc.ext_stride)
                    .wrapping_sub(u64::from(desc.row_bytes))
                    .wrapping_add(4);
                self.cur_ta = self
                    .cur_ta
                    .wrapping_add(desc.tcdm_stride)
                    .wrapping_sub(desc.row_bytes)
                    .wrapping_add(4);
            } else {
                self.cur_ea = self.cur_ea.wrapping_add(4);
                self.cur_ta = self.cur_ta.wrapping_add(4);
            }
            moved += 1;
        }
        if moved > 0 {
            self.busy_cycles += 1;
            self.bytes_moved += u64::from(moved) * 4;
        }
        if self.current_word == desc.total_words() {
            self.queue.pop_front();
            self.current_word = 0;
            self.completed += 1;
            self.sync_cursor();
        }
        moved
    }

    /// Drains the head descriptor as the *sole* TCDM master for up to
    /// `max_cycles` cycles, stopping at the descriptor boundary so
    /// completion-watermark pollers observe the same transition points
    /// as with per-cycle stepping. Returns the cycles consumed (0 when
    /// idle).
    ///
    /// Bit-exact with the per-cycle `desired_accesses`/`arbitrate`/
    /// `commit` protocol: with a single master every access is granted
    /// (one word per bank per cycle), so rows are moved as whole batched
    /// slices, with all counters — TCDM/external traffic, interconnect
    /// requests/grants and round-robin state, DMA busy cycles and bytes
    /// — advanced by exactly what the cycle-accurate path would produce.
    pub fn burst_sole(
        &mut self,
        tcdm: &mut Tcdm,
        ext: &mut ExtMemory,
        interconnect: &mut Interconnect,
        max_cycles: u64,
    ) -> u64 {
        let Some(desc) = self.queue.front().copied() else {
            return 0;
        };
        let total = desc.total_words();
        let wpr = u64::from(desc.row_bytes / 4);
        let mut cycles = 0u64;
        if self.words_per_cycle == 1 {
            // One word per cycle: a row run of L words is exactly L
            // conflict-free cycles — move it as one slice.
            while self.current_word < total && cycles < max_cycles {
                let col = self.current_word % wpr;
                let run = (wpr - col)
                    .min(total - self.current_word)
                    .min(max_cycles - cycles) as usize;
                let (ea, ta) = desc.word_addrs(self.current_word);
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.resize(run, 0);
                match desc.dir {
                    DmaDirection::ExtToTcdm => {
                        ext.read_words_into(ea, &mut scratch[..run]);
                        tcdm.write_words_from(ta, &scratch[..run]);
                    }
                    DmaDirection::TcdmToExt => {
                        tcdm.read_words_into(ta, &mut scratch[..run]);
                        ext.write_words_from(ea, &scratch[..run]);
                    }
                }
                self.scratch = scratch;
                interconnect.grant_stream(MasterId::Dma, ta, 4, run as u32);
                self.current_word += run as u64;
                cycles += run as u64;
                self.busy_cycles += run as u64;
                self.bytes_moved += 4 * run as u64;
            }
            if self.current_word == total {
                self.queue.pop_front();
                self.current_word = 0;
                self.completed += 1;
            }
            self.sync_cursor();
        } else {
            // Wider ports can straddle a row boundary within one cycle
            // (two non-consecutive words may share a bank); run the
            // cycle-accurate protocol with reused buffers instead.
            let before = self.completed;
            let mut addrs: Vec<u32> = Vec::with_capacity(self.words_per_cycle as usize);
            let mut grants: Vec<bool> = vec![false; self.words_per_cycle as usize];
            while self.completed == before && cycles < max_cycles {
                self.desired_accesses_into(&mut addrs);
                interconnect.arbitrate_sole(MasterId::Dma, &addrs, &mut grants[..addrs.len()]);
                let n = addrs.len();
                self.commit(&grants[..n], tcdm, ext);
                cycles += 1;
            }
        }
        cycles
    }

    /// Drains the head descriptor as the sole TCDM master while every
    /// external-memory beat draws from the shared HMC slot budget of
    /// `port` — the contended-aware variant of
    /// [`DmaEngine::burst_sole`]. `start_cycle` anchors the grant
    /// schedule to the cluster clock; the burst stops at the
    /// descriptor boundary or after `max_cycles`, whichever comes
    /// first.
    ///
    /// Bit-exact with the clipped per-cycle protocol (truncate the
    /// desired accesses to the cycle's granted slot count, arbitrate,
    /// commit): whole-row slices are still moved in batches, but each
    /// batch clips at the run of consecutive granted cycles, and
    /// zero-grant cycles advance time without issuing TCDM requests or
    /// touching any traffic counter.
    pub fn burst_sole_throttled(
        &mut self,
        tcdm: &mut Tcdm,
        ext: &mut ExtMemory,
        interconnect: &mut Interconnect,
        port: HmcPort,
        start_cycle: u64,
        max_cycles: u64,
    ) -> ThrottledBurst {
        let Some(desc) = self.queue.front().copied() else {
            return ThrottledBurst::default();
        };
        let total = desc.total_words();
        let wpr = u64::from(desc.row_bytes / 4);
        let mut out = ThrottledBurst::default();
        if self.words_per_cycle == 1 {
            while self.current_word < total && out.cycles < max_cycles {
                let t = start_cycle + out.cycles;
                if port.granted(t) == 0 {
                    // No slot this cycle: the beat stays pending, no
                    // TCDM request is issued.
                    out.cycles += 1;
                    continue;
                }
                // Extend the batch over consecutive granted cycles,
                // clipped at the row run (one conflict-free word per
                // granted cycle, exactly as the per-cycle protocol).
                let col = self.current_word % wpr;
                let cap = (wpr - col)
                    .min(total - self.current_word)
                    .min(max_cycles - out.cycles);
                let mut run = 1u64;
                while run < cap && port.granted(t + run) > 0 {
                    run += 1;
                }
                let run = run as usize;
                let (ea, ta) = desc.word_addrs(self.current_word);
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.resize(run, 0);
                match desc.dir {
                    DmaDirection::ExtToTcdm => {
                        ext.read_words_into(ea, &mut scratch[..run]);
                        tcdm.write_words_from(ta, &scratch[..run]);
                    }
                    DmaDirection::TcdmToExt => {
                        tcdm.read_words_into(ta, &mut scratch[..run]);
                        ext.write_words_from(ea, &scratch[..run]);
                    }
                }
                self.scratch = scratch;
                interconnect.grant_stream(MasterId::Dma, ta, 4, run as u32);
                self.current_word += run as u64;
                out.cycles += run as u64;
                out.active_cycles += run as u64;
                self.busy_cycles += run as u64;
                self.bytes_moved += 4 * run as u64;
            }
            if self.current_word == total {
                self.queue.pop_front();
                self.current_word = 0;
                self.completed += 1;
            }
            self.sync_cursor();
        } else {
            // Wider ports run the cycle-accurate protocol with the
            // desired list clipped to the cycle's slot grant.
            let before = self.completed;
            let mut addrs: Vec<u32> = Vec::with_capacity(self.words_per_cycle as usize);
            let mut grants: Vec<bool> = vec![false; self.words_per_cycle as usize];
            while self.completed == before && out.cycles < max_cycles {
                let t = start_cycle + out.cycles;
                let allow = port.granted(t).min(self.words_per_cycle) as usize;
                self.desired_accesses_into(&mut addrs);
                addrs.truncate(allow);
                if addrs.is_empty() {
                    out.cycles += 1;
                    continue;
                }
                interconnect.arbitrate_sole(MasterId::Dma, &addrs, &mut grants[..addrs.len()]);
                let n = addrs.len();
                self.commit(&grants[..n], tcdm, ext);
                out.cycles += 1;
                out.active_cycles += 1;
            }
        }
        out
    }

    /// Drains the whole queue assuming every TCDM access is granted.
    /// Returns the number of cycles consumed.
    pub fn run_to_completion(&mut self, tcdm: &mut Tcdm, ext: &mut ExtMemory) -> u64 {
        let mut cycles = 0;
        while !self.is_idle() {
            let desired = self.desired_accesses();
            let grants = vec![true; desired.len()];
            self.commit(&grants, tcdm, ext);
            cycles += 1;
        }
        cycles
    }

    /// Total payload bytes moved (both directions).
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Cycles in which at least one word moved.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Descriptors fully retired.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Resets the statistics counters (not the queue).
    pub fn reset_counters(&mut self) {
        self.bytes_moved = 0;
        self.busy_cycles = 0;
        self.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_transfer_roundtrip() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32_slice(0, &[1.0, 2.0, 3.0]);
        dma.push(DmaDescriptor::linear(0, 0x100, 12, DmaDirection::ExtToTcdm));
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(tcdm.read_f32(0x100), 1.0);
        assert_eq!(tcdm.read_f32(0x108), 3.0);
        // And back out to a different location.
        dma.push(DmaDescriptor::linear(
            0x40,
            0x100,
            12,
            DmaDirection::TcdmToExt,
        ));
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(ext.read_f32_slice(0x40, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_dimensional_strided_transfer() {
        // Copy a 2x3-word tile out of a 5-word-wide external image.
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        #[rustfmt::skip]
        ext.write_f32_slice(0, &[
            1.0, 2.0, 3.0, 4.0, 5.0,
            6.0, 7.0, 8.0, 9.0, 10.0,
        ]);
        dma.push(DmaDescriptor {
            ext_addr: 4, // start at column 1
            tcdm_addr: 0,
            row_bytes: 12, // 3 words
            rows: 2,
            ext_stride: 20,  // 5 words
            tcdm_stride: 12, // packed
            dir: DmaDirection::ExtToTcdm,
        });
        dma.run_to_completion(&mut tcdm, &mut ext);
        let got: Vec<f32> = (0..6).map(|i| tcdm.read_f32(4 * i)).collect();
        assert_eq!(got, vec![2.0, 3.0, 4.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn bandwidth_is_one_word_per_cycle() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        dma.push(DmaDescriptor::linear(0, 0, 400, DmaDirection::ExtToTcdm));
        let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(cycles, 100);
        assert_eq!(dma.bytes_moved(), 400);
    }

    #[test]
    fn wider_port_halves_cycles() {
        let mut dma = DmaEngine::new(2);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        dma.push(DmaDescriptor::linear(0, 0, 400, DmaDirection::ExtToTcdm));
        let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(cycles, 50);
    }

    #[test]
    fn denied_grant_preserves_order() {
        let mut dma = DmaEngine::new(2);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32_slice(0, &[1.0, 2.0, 3.0, 4.0]);
        dma.push(DmaDescriptor::linear(0, 0, 16, DmaDirection::ExtToTcdm));
        // First beat granted, second denied: only one word moves.
        let desired = dma.desired_accesses();
        assert_eq!(desired.len(), 2);
        assert_eq!(dma.commit(&[true, false], &mut tcdm, &mut ext), 1);
        // Denied first beat: nothing moves even if the second was granted.
        assert_eq!(dma.commit(&[false, true], &mut tcdm, &mut ext), 0);
        // Finish.
        while !dma.is_idle() {
            let n = dma.desired_accesses().len();
            dma.commit(&vec![true; n], &mut tcdm, &mut ext);
        }
        let got: Vec<f32> = (0..4).map(|i| tcdm.read_f32(4 * i)).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn queue_processes_in_order() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32(0, 1.0);
        ext.write_f32(4, 2.0);
        dma.push(DmaDescriptor::linear(0, 0x10, 4, DmaDirection::ExtToTcdm));
        dma.push(DmaDescriptor::linear(4, 0x20, 4, DmaDirection::ExtToTcdm));
        assert_eq!(dma.pending(), 2);
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(dma.completed(), 2);
        assert_eq!(tcdm.read_f32(0x10), 1.0);
        assert_eq!(tcdm.read_f32(0x20), 2.0);
    }

    #[test]
    fn burst_matches_per_cycle_protocol() {
        for wpc in [1u32, 2] {
            // Reference: the cycle-accurate desired/arbitrate/commit loop.
            let mut dma_ref = DmaEngine::new(wpc);
            let mut tcdm_ref = Tcdm::default();
            let mut ext_ref = ExtMemory::new();
            let mut ic_ref = Interconnect::new(32);
            // Burst path.
            let mut dma = DmaEngine::new(wpc);
            let mut tcdm = Tcdm::default();
            let mut ext = ExtMemory::new();
            let mut ic = Interconnect::new(32);
            let image: Vec<f32> = (0..64).map(|i| i as f32).collect();
            for e in [&mut ext_ref, &mut ext] {
                e.write_f32_slice(0, &image);
                e.reset_counters();
            }
            let descs = [
                DmaDescriptor {
                    ext_addr: 4,
                    tcdm_addr: 0x100,
                    row_bytes: 20,
                    rows: 3,
                    ext_stride: 28,
                    tcdm_stride: 20,
                    dir: DmaDirection::ExtToTcdm,
                },
                DmaDescriptor::linear(0x400, 0x100, 40, DmaDirection::TcdmToExt),
            ];
            for d in descs {
                dma_ref.push(d);
                dma.push(d);
            }
            let mut ref_cycles = 0u64;
            while !dma_ref.is_idle() {
                let addrs = dma_ref.desired_accesses();
                let reqs: Vec<crate::BankRequest> = addrs
                    .iter()
                    .map(|&addr| crate::BankRequest {
                        master: MasterId::Dma,
                        addr,
                    })
                    .collect();
                let grants = ic_ref.arbitrate(&reqs);
                dma_ref.commit(&grants, &mut tcdm_ref, &mut ext_ref);
                ref_cycles += 1;
            }
            let mut cycles = 0u64;
            while !dma.is_idle() {
                let c = dma.burst_sole(&mut tcdm, &mut ext, &mut ic, u64::MAX);
                assert!(c > 0, "burst must make progress");
                cycles += c;
            }
            assert_eq!(cycles, ref_cycles, "wpc {wpc}");
            assert_eq!(dma.bytes_moved(), dma_ref.bytes_moved());
            assert_eq!(dma.busy_cycles(), dma_ref.busy_cycles());
            assert_eq!(dma.completed(), dma_ref.completed());
            assert_eq!(ic.requests(), ic_ref.requests());
            assert_eq!(ic.grants(), ic_ref.grants());
            assert_eq!(ic.conflicts(), ic_ref.conflicts());
            assert_eq!(
                (tcdm.reads(), tcdm.writes()),
                (tcdm_ref.reads(), tcdm_ref.writes())
            );
            assert_eq!(ext.bytes_read(), ext_ref.bytes_read());
            assert_eq!(ext.bytes_written(), ext_ref.bytes_written());
            for a in (0..0x200u32).step_by(4) {
                assert_eq!(tcdm.peek_u32(a), tcdm_ref.peek_u32(a), "tcdm @{a:#x}");
            }
            assert_eq!(
                ext.read_f32_slice(0x400, 10),
                ext_ref.read_f32_slice(0x400, 10)
            );
        }
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn unaligned_descriptor_rejected() {
        let mut dma = DmaEngine::new(1);
        dma.push(DmaDescriptor::linear(2, 0, 4, DmaDirection::ExtToTcdm));
    }

    /// A port whose shared budget binds hard: 8 GB/s LoB at 1.25 GHz
    /// is 1.6 words/cycle, split across `ports` streaming clusters.
    fn tight_port(ports: u32, index: u32, wpc: u32) -> HmcPort {
        let cfg = crate::hmc::HmcConfig::default().with_interconnect_bits(64);
        crate::hmc::HmcSubsystem::new(cfg, ports, 1.25e9, wpc).port(index)
    }

    #[test]
    fn throttled_burst_matches_clipped_per_cycle_protocol() {
        for wpc in [1u32, 2] {
            let port = tight_port(4, 1, wpc);
            assert!(port.throttles());
            // Reference: the cycle-accurate protocol with the desired
            // list truncated to the cycle's granted slot count.
            let mut dma_ref = DmaEngine::new(wpc);
            let mut tcdm_ref = Tcdm::default();
            let mut ext_ref = ExtMemory::new();
            let mut ic_ref = Interconnect::new(32);
            // Throttled burst path.
            let mut dma = DmaEngine::new(wpc);
            let mut tcdm = Tcdm::default();
            let mut ext = ExtMemory::new();
            let mut ic = Interconnect::new(32);
            let image: Vec<f32> = (0..64).map(|i| i as f32 - 17.0).collect();
            for e in [&mut ext_ref, &mut ext] {
                e.write_f32_slice(0, &image);
                e.reset_counters();
            }
            let descs = [
                DmaDescriptor {
                    ext_addr: 4,
                    tcdm_addr: 0x100,
                    row_bytes: 20,
                    rows: 3,
                    ext_stride: 28,
                    tcdm_stride: 20,
                    dir: DmaDirection::ExtToTcdm,
                },
                DmaDescriptor::linear(0x400, 0x100, 40, DmaDirection::TcdmToExt),
            ];
            for d in descs {
                dma_ref.push(d);
                dma.push(d);
            }
            let mut ref_cycles = 0u64;
            while !dma_ref.is_idle() {
                let allow = port.granted(ref_cycles).min(wpc) as usize;
                let mut addrs = dma_ref.desired_accesses();
                addrs.truncate(allow);
                let reqs: Vec<crate::BankRequest> = addrs
                    .iter()
                    .map(|&addr| crate::BankRequest {
                        master: MasterId::Dma,
                        addr,
                    })
                    .collect();
                let grants = ic_ref.arbitrate(&reqs);
                dma_ref.commit(&grants, &mut tcdm_ref, &mut ext_ref);
                ref_cycles += 1;
            }
            let mut cycles = 0u64;
            while !dma.is_idle() {
                // Small max_cycles chunks exercise resume-mid-starve.
                let b = dma.burst_sole_throttled(&mut tcdm, &mut ext, &mut ic, port, cycles, 7);
                assert!(b.cycles > 0, "burst must consume cycles");
                assert!(b.active_cycles <= b.cycles);
                cycles += b.cycles;
            }
            assert_eq!(cycles, ref_cycles, "wpc {wpc}");
            assert_eq!(dma.bytes_moved(), dma_ref.bytes_moved());
            assert_eq!(dma.busy_cycles(), dma_ref.busy_cycles());
            assert_eq!(dma.completed(), dma_ref.completed());
            assert_eq!(ic.requests(), ic_ref.requests());
            assert_eq!(ic.grants(), ic_ref.grants());
            assert_eq!(ic.conflicts(), ic_ref.conflicts());
            assert_eq!(ext.bytes_read(), ext_ref.bytes_read());
            assert_eq!(ext.bytes_written(), ext_ref.bytes_written());
            for a in (0..0x200u32).step_by(4) {
                assert_eq!(tcdm.peek_u32(a), tcdm_ref.peek_u32(a), "tcdm @{a:#x}");
            }
            assert_eq!(
                ext.read_f32_slice(0x400, 10),
                ext_ref.read_f32_slice(0x400, 10)
            );
        }
    }

    #[test]
    fn identical_streams_share_the_budget_fairly() {
        // 4 engines streaming identical descriptors against one tight
        // subsystem: each must finish in ~4x the uncontended time, and
        // within one rotation period of each other.
        let ports = 4u32;
        let words = 400u32;
        let cfg = crate::hmc::HmcConfig::default().with_interconnect_bits(64);
        let mut sub = crate::hmc::HmcSubsystem::new(cfg, ports, 1.25e9, 1);
        let share = sub.shared_words_per_cycle() / f64::from(ports);
        let expected = f64::from(words) / share;
        let mut finish = Vec::new();
        for i in 0..ports {
            let port = sub.port(i);
            let mut dma = DmaEngine::new(1);
            let mut tcdm = Tcdm::default();
            let mut ic = Interconnect::new(32);
            sub.mem(i).write_f32_slice(0, &vec![1.0; words as usize]);
            dma.push(DmaDescriptor::linear(
                0,
                0,
                4 * words,
                DmaDirection::ExtToTcdm,
            ));
            let mut cycles = 0u64;
            while !dma.is_idle() {
                cycles += dma
                    .burst_sole_throttled(&mut tcdm, sub.mem(i), &mut ic, port, cycles, u64::MAX)
                    .cycles;
            }
            assert_eq!(dma.bytes_moved(), u64::from(4 * words));
            finish.push(cycles);
        }
        let min = *finish.iter().min().unwrap();
        let max = *finish.iter().max().unwrap();
        assert!(
            u32::try_from(max - min).unwrap() <= ports,
            "fair share drifted: {finish:?}"
        );
        for (i, &c) in finish.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!(
                (0.99..=1.01).contains(&ratio),
                "port {i} finished in {c} cycles, expected ~{expected:.0}"
            );
        }
    }
}
