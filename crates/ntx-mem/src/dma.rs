//! The cluster DMA engine.
//!
//! §II-A: *"An additional DMA engine allows the transfer of two-
//! dimensional data planes between the TCDM and the HMC's memory
//! space."* §II-E: the cores use it for double buffering so NTX compute
//! and data movement overlap.
//!
//! The engine drains a queue of 2-D descriptors, moving one 32-bit word
//! per granted TCDM access. The AXI port runs 64 bit wide at half the
//! NTX clock (§III-A), i.e. one word per NTX cycle — 5 GB/s at
//! 1.25 GHz — which is exactly the TCDM-side request rate, so a single
//! [`words_per_cycle`](DmaEngine::words_per_cycle) parameter models the
//! port width (2 for the 128-bit, 4 for the 256-bit variant of §III-C).

use crate::ext_mem::ExtMemory;
use crate::tcdm::Tcdm;
use std::collections::VecDeque;

/// Transfer direction of a descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmaDirection {
    /// External memory → TCDM (input tile load).
    ExtToTcdm,
    /// TCDM → external memory (result tile store).
    TcdmToExt,
}

/// A two-dimensional DMA transfer descriptor.
///
/// Moves `rows` rows of `row_bytes` bytes each; consecutive rows are
/// `ext_stride` bytes apart on the external side and `tcdm_stride`
/// bytes apart in the TCDM. A 1-D transfer is a descriptor with
/// `rows == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaDescriptor {
    /// External-memory base address.
    pub ext_addr: u64,
    /// TCDM base address.
    pub tcdm_addr: u32,
    /// Bytes per row (must be a positive multiple of 4).
    pub row_bytes: u32,
    /// Number of rows (must be positive).
    pub rows: u32,
    /// External-side distance between row starts, in bytes.
    pub ext_stride: u64,
    /// TCDM-side distance between row starts, in bytes.
    pub tcdm_stride: u32,
    /// Transfer direction.
    pub dir: DmaDirection,
}

impl DmaDescriptor {
    /// Convenience 1-D descriptor.
    #[must_use]
    pub fn linear(ext_addr: u64, tcdm_addr: u32, bytes: u32, dir: DmaDirection) -> Self {
        Self {
            ext_addr,
            tcdm_addr,
            row_bytes: bytes,
            rows: 1,
            ext_stride: u64::from(bytes),
            tcdm_stride: bytes,
            dir,
        }
    }

    /// Total payload bytes of the transfer.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.row_bytes) * u64::from(self.rows)
    }

    fn total_words(&self) -> u64 {
        self.total_bytes() / 4
    }

    fn word_addrs(&self, word: u64) -> (u64, u32) {
        let wpr = u64::from(self.row_bytes / 4);
        let row = word / wpr;
        let col = word % wpr;
        (
            self.ext_addr + row * self.ext_stride + col * 4,
            self.tcdm_addr
                .wrapping_add((row as u32).wrapping_mul(self.tcdm_stride))
                .wrapping_add(col as u32 * 4),
        )
    }
}

/// The DMA engine: descriptor queue plus transfer state machine.
///
/// Per simulated cycle the cluster asks for the TCDM addresses the DMA
/// wants ([`DmaEngine::desired_accesses`]), arbitrates them against the
/// NTX/core masters, and calls [`DmaEngine::commit`] with the grant
/// flags. [`DmaEngine::run_to_completion`] is the stand-alone variant
/// used by tests and coarse models, where every access is granted.
///
/// # Example
///
/// ```
/// use ntx_mem::{DmaDescriptor, DmaDirection, DmaEngine, ExtMemory, Tcdm};
///
/// let mut dma = DmaEngine::new(1);
/// let mut tcdm = Tcdm::default();
/// let mut ext = ExtMemory::new();
/// ext.write_f32_slice(0x100, &[1.0, 2.0, 3.0, 4.0]);
/// dma.push(DmaDescriptor::linear(0x100, 0x40, 16, DmaDirection::ExtToTcdm));
/// let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
/// assert_eq!(cycles, 4); // one word per cycle
/// assert_eq!(tcdm.read_f32(0x44), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct DmaEngine {
    queue: VecDeque<DmaDescriptor>,
    current_word: u64,
    words_per_cycle: u32,
    bytes_moved: u64,
    busy_cycles: u64,
    completed: u64,
}

impl DmaEngine {
    /// Creates an engine moving up to `words_per_cycle` 32-bit words per
    /// cycle (1 = the paper's 64-bit AXI port at half clock).
    ///
    /// # Panics
    ///
    /// Panics if `words_per_cycle` is zero.
    #[must_use]
    pub fn new(words_per_cycle: u32) -> Self {
        assert!(words_per_cycle > 0, "DMA must move at least one word");
        Self {
            queue: VecDeque::new(),
            current_word: 0,
            words_per_cycle,
            bytes_moved: 0,
            busy_cycles: 0,
            completed: 0,
        }
    }

    /// Port width in words per cycle.
    #[must_use]
    pub fn words_per_cycle(&self) -> u32 {
        self.words_per_cycle
    }

    /// Enqueues a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor geometry is degenerate (zero rows, zero
    /// or unaligned row bytes, unaligned addresses).
    pub fn push(&mut self, desc: DmaDescriptor) {
        assert!(desc.rows > 0, "descriptor needs at least one row");
        assert!(
            desc.row_bytes > 0 && desc.row_bytes.is_multiple_of(4),
            "row bytes must be a positive multiple of 4"
        );
        assert!(
            desc.ext_addr.is_multiple_of(4) && desc.tcdm_addr.is_multiple_of(4),
            "DMA addresses must be word aligned"
        );
        assert!(
            desc.ext_stride.is_multiple_of(4) && desc.tcdm_stride.is_multiple_of(4),
            "DMA strides must be word aligned"
        );
        self.queue.push_back(desc);
    }

    /// True when no descriptor is pending or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of descriptors waiting (including the active one).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// TCDM word addresses the engine wants to access this cycle, up to
    /// the port width (fewer near the end of a descriptor; descriptors
    /// do not overlap within a cycle, matching the RTL's serialisation).
    #[must_use]
    pub fn desired_accesses(&self) -> Vec<u32> {
        let Some(desc) = self.queue.front() else {
            return Vec::new();
        };
        let remaining = desc.total_words() - self.current_word;
        let n = u64::from(self.words_per_cycle).min(remaining);
        (0..n)
            .map(|i| desc.word_addrs(self.current_word + i).1)
            .collect()
    }

    /// Performs the granted transfers for this cycle. `granted[i]`
    /// corresponds to `desired_accesses()[i]`; a prefix-contiguity rule
    /// applies (a denied word blocks the ones behind it, preserving
    /// order). Returns the number of words moved.
    pub fn commit(&mut self, granted: &[bool], tcdm: &mut Tcdm, ext: &mut ExtMemory) -> u32 {
        let Some(desc) = self.queue.front().copied() else {
            return 0;
        };
        let mut moved = 0u32;
        for &g in granted {
            if !g {
                break; // in-order: a stalled beat blocks the rest
            }
            let (ea, ta) = desc.word_addrs(self.current_word);
            match desc.dir {
                DmaDirection::ExtToTcdm => {
                    let w = ext.read_u32(ea);
                    tcdm.write_u32(ta, w);
                }
                DmaDirection::TcdmToExt => {
                    let w = tcdm.read_u32(ta);
                    ext.write_u32(ea, w);
                }
            }
            self.current_word += 1;
            moved += 1;
        }
        if moved > 0 {
            self.busy_cycles += 1;
            self.bytes_moved += u64::from(moved) * 4;
        }
        if self.current_word == desc.total_words() {
            self.queue.pop_front();
            self.current_word = 0;
            self.completed += 1;
        }
        moved
    }

    /// Drains the whole queue assuming every TCDM access is granted.
    /// Returns the number of cycles consumed.
    pub fn run_to_completion(&mut self, tcdm: &mut Tcdm, ext: &mut ExtMemory) -> u64 {
        let mut cycles = 0;
        while !self.is_idle() {
            let desired = self.desired_accesses();
            let grants = vec![true; desired.len()];
            self.commit(&grants, tcdm, ext);
            cycles += 1;
        }
        cycles
    }

    /// Total payload bytes moved (both directions).
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Cycles in which at least one word moved.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Descriptors fully retired.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Resets the statistics counters (not the queue).
    pub fn reset_counters(&mut self) {
        self.bytes_moved = 0;
        self.busy_cycles = 0;
        self.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_transfer_roundtrip() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32_slice(0, &[1.0, 2.0, 3.0]);
        dma.push(DmaDescriptor::linear(0, 0x100, 12, DmaDirection::ExtToTcdm));
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(tcdm.read_f32(0x100), 1.0);
        assert_eq!(tcdm.read_f32(0x108), 3.0);
        // And back out to a different location.
        dma.push(DmaDescriptor::linear(
            0x40,
            0x100,
            12,
            DmaDirection::TcdmToExt,
        ));
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(ext.read_f32_slice(0x40, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn two_dimensional_strided_transfer() {
        // Copy a 2x3-word tile out of a 5-word-wide external image.
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        #[rustfmt::skip]
        ext.write_f32_slice(0, &[
            1.0, 2.0, 3.0, 4.0, 5.0,
            6.0, 7.0, 8.0, 9.0, 10.0,
        ]);
        dma.push(DmaDescriptor {
            ext_addr: 4, // start at column 1
            tcdm_addr: 0,
            row_bytes: 12, // 3 words
            rows: 2,
            ext_stride: 20,  // 5 words
            tcdm_stride: 12, // packed
            dir: DmaDirection::ExtToTcdm,
        });
        dma.run_to_completion(&mut tcdm, &mut ext);
        let got: Vec<f32> = (0..6).map(|i| tcdm.read_f32(4 * i)).collect();
        assert_eq!(got, vec![2.0, 3.0, 4.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn bandwidth_is_one_word_per_cycle() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        dma.push(DmaDescriptor::linear(0, 0, 400, DmaDirection::ExtToTcdm));
        let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(cycles, 100);
        assert_eq!(dma.bytes_moved(), 400);
    }

    #[test]
    fn wider_port_halves_cycles() {
        let mut dma = DmaEngine::new(2);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        dma.push(DmaDescriptor::linear(0, 0, 400, DmaDirection::ExtToTcdm));
        let cycles = dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(cycles, 50);
    }

    #[test]
    fn denied_grant_preserves_order() {
        let mut dma = DmaEngine::new(2);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32_slice(0, &[1.0, 2.0, 3.0, 4.0]);
        dma.push(DmaDescriptor::linear(0, 0, 16, DmaDirection::ExtToTcdm));
        // First beat granted, second denied: only one word moves.
        let desired = dma.desired_accesses();
        assert_eq!(desired.len(), 2);
        assert_eq!(dma.commit(&[true, false], &mut tcdm, &mut ext), 1);
        // Denied first beat: nothing moves even if the second was granted.
        assert_eq!(dma.commit(&[false, true], &mut tcdm, &mut ext), 0);
        // Finish.
        while !dma.is_idle() {
            let n = dma.desired_accesses().len();
            dma.commit(&vec![true; n], &mut tcdm, &mut ext);
        }
        let got: Vec<f32> = (0..4).map(|i| tcdm.read_f32(4 * i)).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn queue_processes_in_order() {
        let mut dma = DmaEngine::new(1);
        let mut tcdm = Tcdm::default();
        let mut ext = ExtMemory::new();
        ext.write_f32(0, 1.0);
        ext.write_f32(4, 2.0);
        dma.push(DmaDescriptor::linear(0, 0x10, 4, DmaDirection::ExtToTcdm));
        dma.push(DmaDescriptor::linear(4, 0x20, 4, DmaDirection::ExtToTcdm));
        assert_eq!(dma.pending(), 2);
        dma.run_to_completion(&mut tcdm, &mut ext);
        assert_eq!(dma.completed(), 2);
        assert_eq!(tcdm.read_f32(0x10), 1.0);
        assert_eq!(tcdm.read_f32(0x20), 2.0);
    }

    #[test]
    #[should_panic(expected = "word aligned")]
    fn unaligned_descriptor_rejected() {
        let mut dma = DmaEngine::new(1);
        dma.push(DmaDescriptor::linear(2, 0, 4, DmaDirection::ExtToTcdm));
    }
}
