//! Property-based tests of the memory system.

use ntx_mem::{
    BankRequest, DmaDescriptor, DmaDirection, DmaEngine, ExtMemory, Interconnect, MasterId, Tcdm,
};
use proptest::prelude::*;

proptest! {
    /// TCDM word writes read back exactly; bytes compose words (little
    /// endian).
    #[test]
    fn tcdm_word_byte_consistency(addr in (0u32..16_000).prop_map(|a| a * 4), value in any::<u32>()) {
        let mut t = Tcdm::default();
        t.write_u32(addr, value);
        prop_assert_eq!(t.read_u32(addr), value);
        let mut composed = 0u32;
        for i in 0..4 {
            composed |= u32::from(t.read_u8(addr + i)) << (8 * i);
        }
        prop_assert_eq!(composed, value);
    }

    /// The arbiter grants exactly one request per contended bank, and
    /// every grant corresponds to a real request (conservation).
    #[test]
    fn arbiter_grants_one_per_bank(
        addrs in prop::collection::vec((0u32..512).prop_map(|a| a * 4), 1..24)
    ) {
        let mut ic = Interconnect::new(32);
        let reqs: Vec<BankRequest> = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| BankRequest {
                master: MasterId::Ntx(i % 10),
                addr,
            })
            .collect();
        let grants = ic.arbitrate(&reqs);
        prop_assert_eq!(grants.len(), reqs.len());
        // Per bank: at most one grant; at least one if requested.
        for bank in 0..32u32 {
            let contenders: Vec<usize> = reqs
                .iter()
                .enumerate()
                .filter(|(_, r)| (r.addr / 4) % 32 == bank)
                .map(|(i, _)| i)
                .collect();
            let granted = contenders.iter().filter(|&&i| grants[i]).count();
            if contenders.is_empty() {
                prop_assert_eq!(granted, 0);
            } else {
                prop_assert_eq!(granted, 1, "bank {} contenders {:?}", bank, contenders);
            }
        }
        // Statistics add up.
        prop_assert_eq!(ic.grants() + ic.conflicts(), ic.requests());
    }

    /// Under repeated identical contention, round-robin serves every
    /// distinct master the same number of times (fairness).
    #[test]
    fn arbiter_is_fair(masters in 2usize..8, rounds in 1usize..6) {
        let mut ic = Interconnect::new(4);
        let reqs: Vec<BankRequest> = (0..masters)
            .map(|m| BankRequest { master: MasterId::Ntx(m), addr: 0 })
            .collect();
        let mut wins = vec![0usize; masters];
        for _ in 0..masters * rounds {
            let grants = ic.arbitrate(&reqs);
            for (m, &g) in grants.iter().enumerate() {
                if g {
                    wins[m] += 1;
                }
            }
        }
        for (m, &w) in wins.iter().enumerate() {
            prop_assert_eq!(w, rounds, "master {}", m);
        }
    }

    /// A 2-D DMA transfer moves exactly the bytes a plain nested-loop
    /// copy moves, for arbitrary geometries.
    #[test]
    fn dma_2d_matches_reference_copy(
        rows in 1u32..6,
        row_words in 1u32..8,
        ext_gap_words in 0u32..4,
        tcdm_gap_words in 0u32..4,
        seed in any::<u32>(),
    ) {
        let row_bytes = row_words * 4;
        let ext_stride = u64::from(row_bytes + ext_gap_words * 4);
        let tcdm_stride = row_bytes + tcdm_gap_words * 4;
        let mut ext = ExtMemory::new();
        let mut tcdm = Tcdm::default();
        // Fill the external source with a deterministic pattern.
        let mut s = seed | 1;
        let mut pattern = Vec::new();
        for r in 0..rows {
            for c in 0..row_words {
                s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                ext.write_u32(u64::from(r) * ext_stride + u64::from(c) * 4, s);
                pattern.push(((r, c), s));
            }
        }
        let mut dma = DmaEngine::new(1);
        dma.push(DmaDescriptor {
            ext_addr: 0,
            tcdm_addr: 0x100,
            row_bytes,
            rows,
            ext_stride,
            tcdm_stride,
            dir: DmaDirection::ExtToTcdm,
        });
        dma.run_to_completion(&mut tcdm, &mut ext);
        for ((r, c), v) in pattern {
            prop_assert_eq!(tcdm.read_u32(0x100 + r * tcdm_stride + c * 4), v);
        }
        prop_assert_eq!(dma.bytes_moved(), u64::from(rows * row_bytes));
    }

    /// Loopback: ext -> TCDM -> ext reproduces the original bytes.
    #[test]
    fn dma_loopback(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let mut ext = ExtMemory::new();
        let mut tcdm = Tcdm::default();
        for (i, &w) in words.iter().enumerate() {
            ext.write_u32(4 * i as u64, w);
        }
        let bytes = 4 * words.len() as u32;
        let mut dma = DmaEngine::new(2);
        dma.push(DmaDescriptor::linear(0, 0x400, bytes, DmaDirection::ExtToTcdm));
        dma.push(DmaDescriptor::linear(
            0x10_000,
            0x400,
            bytes,
            DmaDirection::TcdmToExt,
        ));
        dma.run_to_completion(&mut tcdm, &mut ext);
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(ext.read_u32(0x10_000 + 4 * i as u64), w);
        }
    }

    /// Partial grants never lose or duplicate data.
    #[test]
    fn dma_with_random_grant_pattern(denials in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut ext = ExtMemory::new();
        let mut tcdm = Tcdm::default();
        let n = 16u32;
        for i in 0..n {
            ext.write_u32(4 * u64::from(i), 0xa000 + i);
        }
        let mut dma = DmaEngine::new(1);
        dma.push(DmaDescriptor::linear(0, 0, 4 * n, DmaDirection::ExtToTcdm));
        let mut d = denials.into_iter();
        let mut guard = 0;
        while !dma.is_idle() {
            let desired = dma.desired_accesses();
            let grants: Vec<bool> = desired.iter().map(|_| d.next().unwrap_or(true)).collect();
            dma.commit(&grants, &mut tcdm, &mut ext);
            guard += 1;
            prop_assert!(guard < 10_000, "made no progress");
        }
        for i in 0..n {
            prop_assert_eq!(tcdm.read_u32(4 * i), 0xa000 + i);
        }
    }
}
