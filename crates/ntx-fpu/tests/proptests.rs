//! Property-based tests of the wide accumulator and float helpers.
//!
//! The reference for exactness is integer arithmetic: inputs are
//! constrained so every product and the whole running sum fit in an
//! `i128` fixed-point value, which Rust converts to `f32` with correct
//! round-to-nearest-even — a fully independent oracle.

use ntx_fpu::{compose, decompose, ulp, WideAccumulator};
use proptest::prelude::*;

/// Small floats of the form m * 2^e with |m| < 2^12 and e in [-12, 12].
fn small_float() -> impl Strategy<Value = f32> {
    (-(1i32 << 12)..(1i32 << 12), -12i32..=12).prop_map(|(m, e)| m as f32 * 2f32.powi(e))
}

/// Any finite f32 from raw bits.
fn finite_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_filter_map("finite", |bits| {
        let x = f32::from_bits(bits);
        x.is_finite().then_some(x)
    })
}

proptest! {
    /// decompose/compose are exact inverses on every finite f32.
    #[test]
    fn decompose_compose_roundtrip(x in finite_f32()) {
        let d = decompose(x);
        let y = compose(d.negative, u128::from(d.mantissa), d.exp, false);
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }

    /// decompose reconstructs the exact value in f64.
    #[test]
    fn decompose_value_exact(x in finite_f32()) {
        let d = decompose(x);
        let v = d.mantissa as f64 * 2f64.powi(d.exp);
        let v = if d.negative { -v } else { v };
        // Comparing through f64 is exact: every f32 is exactly an f64.
        if x == 0.0 {
            prop_assert_eq!(v, 0.0);
        } else {
            prop_assert_eq!(v, f64::from(x));
        }
    }

    /// The accumulator computes the correctly rounded exact sum of
    /// products (oracle: i128 fixed-point arithmetic).
    #[test]
    fn accumulator_is_exact_sum(pairs in prop::collection::vec((small_float(), small_float()), 0..200)) {
        let mut acc = WideAccumulator::new();
        let mut exact: i128 = 0; // fixed point, LSB = 2^-48
        for &(a, b) in &pairs {
            acc.add_product(a, b);
            // a = ma * 2^-24-ish; reconstruct exactly over 2^-48 grid:
            let fa = (f64::from(a) * 2f64.powi(24)) as i128;
            let fb = (f64::from(b) * 2f64.powi(24)) as i128;
            // Both are exact integers by construction of small_float.
            exact += fa * fb;
        }
        let expected = exact as f32 * 2f32.powi(-48);
        // `i128 as f32` rounds to nearest even; multiplying by a power of
        // two is exact in this range, so `expected` is the correctly
        // rounded exact sum.
        prop_assert_eq!(acc.round().to_bits(), expected.to_bits());
    }

    /// Accumulation is order-independent (exactness implies commutativity).
    #[test]
    fn accumulator_order_independent(pairs in prop::collection::vec((small_float(), small_float()), 1..50)) {
        let mut fwd = WideAccumulator::new();
        for &(a, b) in &pairs {
            fwd.add_product(a, b);
        }
        let mut rev = WideAccumulator::new();
        for &(a, b) in pairs.iter().rev() {
            rev.add_product(a, b);
        }
        prop_assert_eq!(fwd.round().to_bits(), rev.round().to_bits());
    }

    /// x*y accumulated once rounds to the IEEE product (which is what an
    /// FMA with a zero addend produces).
    #[test]
    fn single_product_matches_ieee(a in finite_f32(), b in finite_f32()) {
        let mut acc = WideAccumulator::new();
        acc.add_product(a, b);
        let expected = a.mul_add(b, 0.0);
        if expected.is_nan() {
            prop_assert!(acc.round().is_nan());
        } else if expected == 0.0 {
            // The exact product may be a tiny non-zero value that IEEE
            // flushes to zero only after rounding; both are acceptable
            // zero representations here.
            prop_assert_eq!(acc.round(), 0.0);
        } else {
            prop_assert_eq!(acc.round().to_bits(), expected.to_bits());
        }
    }

    /// add_value then round reproduces the value bit-exactly.
    #[test]
    fn add_value_roundtrip(x in finite_f32()) {
        let mut acc = WideAccumulator::new();
        acc.add_value(x);
        if x == 0.0 {
            prop_assert_eq!(acc.round(), 0.0);
        } else {
            prop_assert_eq!(acc.round().to_bits(), x.to_bits());
        }
    }

    /// Adding and subtracting the same products cancels exactly.
    #[test]
    fn exact_cancellation(pairs in prop::collection::vec((finite_f32(), finite_f32()), 0..50)) {
        let mut acc = WideAccumulator::new();
        for &(a, b) in &pairs {
            if (a * b).is_nan() || f64::from(a) * f64::from(b) == 0.0 {
                continue; // avoid NaN poisoning / sign-of-zero questions
            }
            acc.add_product(a, b);
        }
        for &(a, b) in &pairs {
            if (a * b).is_nan() || f64::from(a) * f64::from(b) == 0.0 {
                continue;
            }
            acc.add_product(-a, b);
        }
        prop_assert!(acc.is_zero(), "residue after cancelling all products");
    }

    /// ulp is positive and bounds the compose rounding error.
    #[test]
    fn ulp_positive(x in finite_f32()) {
        prop_assert!(ulp(x) > 0.0);
    }

    /// The windowed accumulator matches a flat 640-bit reference
    /// (carries always rippled across all limbs, as before the occupied-
    /// limb window) on arbitrary signed product/value sequences.
    #[test]
    fn window_matches_flat_reference(ops in prop::collection::vec(
        (finite_f32(), finite_f32(), any::<bool>()), 0..60,
    )) {
        let mut acc = WideAccumulator::new();
        let mut flat = FlatAccumulator::new();
        for &(a, b, value) in &ops {
            if value {
                acc.add_value(a);
                flat.add_value(a);
            } else {
                acc.add_product(a, b);
                flat.add_product(a, b);
            }
        }
        let got = acc.round();
        let expect = flat.round();
        if expect.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), expect.to_bits());
        }
        prop_assert_eq!(acc.is_zero(), flat.is_zero());
    }
}

/// The pre-window accumulator: a flat 640-bit two's-complement adder
/// whose carries ripple across every limb. Serves as the semantic
/// oracle for the occupied-limb window in `WideAccumulator`.
struct FlatAccumulator {
    limbs: [u64; 10],
    nan: bool,
}

impl FlatAccumulator {
    const LSB_EXP: i32 = -298;

    fn new() -> Self {
        Self {
            limbs: [0; 10],
            nan: false,
        }
    }

    fn is_zero(&self) -> bool {
        !self.nan && self.limbs.iter().all(|&l| l == 0)
    }

    fn add_value(&mut self, x: f32) {
        if x.is_nan() {
            self.nan = true;
        } else if x.is_infinite() {
            self.nan = true; // collapsed: the property only compares finite paths
        } else if x != 0.0 {
            let d = decompose(x);
            if d.mantissa != 0 {
                self.add_magnitude(
                    u128::from(d.mantissa),
                    (d.exp - Self::LSB_EXP) as u32,
                    d.negative,
                );
            }
        }
    }

    fn add_product(&mut self, a: f32, b: f32) {
        if a.is_nan() || b.is_nan() || (a.is_infinite() || b.is_infinite()) {
            self.nan = true;
            return;
        }
        if a == 0.0 || b == 0.0 {
            return;
        }
        let da = decompose(a);
        let db = decompose(b);
        let product = u128::from(da.mantissa) * u128::from(db.mantissa);
        if product != 0 {
            self.add_magnitude(
                product,
                (da.exp + db.exp - Self::LSB_EXP) as u32,
                da.negative ^ db.negative,
            );
        }
    }

    fn add_magnitude(&mut self, magnitude: u128, bitpos: u32, negative: bool) {
        let limb = (bitpos / 64) as usize;
        let off = bitpos % 64;
        let lo = magnitude << off;
        let hi = if off == 0 {
            0
        } else {
            (magnitude >> (64 - off)) >> 64
        };
        let words = [lo as u64, (lo >> 64) as u64, hi as u64];
        if negative {
            let mut borrow = 0u64;
            for (i, &w) in words.iter().enumerate() {
                if limb + i >= 10 {
                    break;
                }
                let (r1, b1) = self.limbs[limb + i].overflowing_sub(w);
                let (r2, b2) = r1.overflowing_sub(borrow);
                self.limbs[limb + i] = r2;
                borrow = u64::from(b1) + u64::from(b2);
            }
            let mut i = limb + 3;
            while borrow != 0 && i < 10 {
                let (r, b) = self.limbs[i].overflowing_sub(borrow);
                self.limbs[i] = r;
                borrow = u64::from(b);
                i += 1;
            }
        } else {
            let mut carry = 0u64;
            for (i, &w) in words.iter().enumerate() {
                if limb + i >= 10 {
                    break;
                }
                let (r1, c1) = self.limbs[limb + i].overflowing_add(w);
                let (r2, c2) = r1.overflowing_add(carry);
                self.limbs[limb + i] = r2;
                carry = u64::from(c1) + u64::from(c2);
            }
            let mut i = limb + 3;
            while carry != 0 && i < 10 {
                let (r, c) = self.limbs[i].overflowing_add(carry);
                self.limbs[i] = r;
                carry = u64::from(c);
                i += 1;
            }
        }
    }

    fn round(&self) -> f32 {
        if self.nan {
            return f32::NAN;
        }
        let negative = self.limbs[9] >> 63 != 0;
        let mut mag = self.limbs;
        if negative {
            let mut carry = 1u64;
            for l in &mut mag {
                let (r, c) = (!*l).overflowing_add(carry);
                *l = r;
                carry = u64::from(c);
            }
        }
        let Some(top_limb) = mag.iter().rposition(|&l| l != 0) else {
            return if negative { -0.0 } else { 0.0 };
        };
        let top_bit = 63 - mag[top_limb].leading_zeros() as usize;
        let h = top_limb * 64 + top_bit;
        let low = h.saturating_sub(95);
        let mut window: u128 = 0;
        for pos in (low..=h).rev() {
            window = (window << 1) | u128::from((mag[pos / 64] >> (pos % 64)) & 1);
        }
        let mut sticky = false;
        for pos in 0..low {
            if (mag[pos / 64] >> (pos % 64)) & 1 == 1 {
                sticky = true;
                break;
            }
        }
        compose(negative, window, low as i32 + Self::LSB_EXP, sticky)
    }
}
