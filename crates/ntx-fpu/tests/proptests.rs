//! Property-based tests of the wide accumulator and float helpers.
//!
//! The reference for exactness is integer arithmetic: inputs are
//! constrained so every product and the whole running sum fit in an
//! `i128` fixed-point value, which Rust converts to `f32` with correct
//! round-to-nearest-even — a fully independent oracle.

use ntx_fpu::{compose, decompose, ulp, WideAccumulator};
use proptest::prelude::*;

/// Small floats of the form m * 2^e with |m| < 2^12 and e in [-12, 12].
fn small_float() -> impl Strategy<Value = f32> {
    (-(1i32 << 12)..(1i32 << 12), -12i32..=12).prop_map(|(m, e)| m as f32 * 2f32.powi(e))
}

/// Any finite f32 from raw bits.
fn finite_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_filter_map("finite", |bits| {
        let x = f32::from_bits(bits);
        x.is_finite().then_some(x)
    })
}

proptest! {
    /// decompose/compose are exact inverses on every finite f32.
    #[test]
    fn decompose_compose_roundtrip(x in finite_f32()) {
        let d = decompose(x);
        let y = compose(d.negative, u128::from(d.mantissa), d.exp, false);
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }

    /// decompose reconstructs the exact value in f64.
    #[test]
    fn decompose_value_exact(x in finite_f32()) {
        let d = decompose(x);
        let v = d.mantissa as f64 * 2f64.powi(d.exp);
        let v = if d.negative { -v } else { v };
        // Comparing through f64 is exact: every f32 is exactly an f64.
        if x == 0.0 {
            prop_assert_eq!(v, 0.0);
        } else {
            prop_assert_eq!(v, f64::from(x));
        }
    }

    /// The accumulator computes the correctly rounded exact sum of
    /// products (oracle: i128 fixed-point arithmetic).
    #[test]
    fn accumulator_is_exact_sum(pairs in prop::collection::vec((small_float(), small_float()), 0..200)) {
        let mut acc = WideAccumulator::new();
        let mut exact: i128 = 0; // fixed point, LSB = 2^-48
        for &(a, b) in &pairs {
            acc.add_product(a, b);
            // a = ma * 2^-24-ish; reconstruct exactly over 2^-48 grid:
            let fa = (f64::from(a) * 2f64.powi(24)) as i128;
            let fb = (f64::from(b) * 2f64.powi(24)) as i128;
            // Both are exact integers by construction of small_float.
            exact += fa * fb;
        }
        let expected = exact as f32 * 2f32.powi(-48);
        // `i128 as f32` rounds to nearest even; multiplying by a power of
        // two is exact in this range, so `expected` is the correctly
        // rounded exact sum.
        prop_assert_eq!(acc.round().to_bits(), expected.to_bits());
    }

    /// Accumulation is order-independent (exactness implies commutativity).
    #[test]
    fn accumulator_order_independent(pairs in prop::collection::vec((small_float(), small_float()), 1..50)) {
        let mut fwd = WideAccumulator::new();
        for &(a, b) in &pairs {
            fwd.add_product(a, b);
        }
        let mut rev = WideAccumulator::new();
        for &(a, b) in pairs.iter().rev() {
            rev.add_product(a, b);
        }
        prop_assert_eq!(fwd.round().to_bits(), rev.round().to_bits());
    }

    /// x*y accumulated once rounds to the IEEE product (which is what an
    /// FMA with a zero addend produces).
    #[test]
    fn single_product_matches_ieee(a in finite_f32(), b in finite_f32()) {
        let mut acc = WideAccumulator::new();
        acc.add_product(a, b);
        let expected = a.mul_add(b, 0.0);
        if expected.is_nan() {
            prop_assert!(acc.round().is_nan());
        } else if expected == 0.0 {
            // The exact product may be a tiny non-zero value that IEEE
            // flushes to zero only after rounding; both are acceptable
            // zero representations here.
            prop_assert_eq!(acc.round(), 0.0);
        } else {
            prop_assert_eq!(acc.round().to_bits(), expected.to_bits());
        }
    }

    /// add_value then round reproduces the value bit-exactly.
    #[test]
    fn add_value_roundtrip(x in finite_f32()) {
        let mut acc = WideAccumulator::new();
        acc.add_value(x);
        if x == 0.0 {
            prop_assert_eq!(acc.round(), 0.0);
        } else {
            prop_assert_eq!(acc.round().to_bits(), x.to_bits());
        }
    }

    /// Adding and subtracting the same products cancels exactly.
    #[test]
    fn exact_cancellation(pairs in prop::collection::vec((finite_f32(), finite_f32()), 0..50)) {
        let mut acc = WideAccumulator::new();
        for &(a, b) in &pairs {
            if (a * b).is_nan() || f64::from(a) * f64::from(b) == 0.0 {
                continue; // avoid NaN poisoning / sign-of-zero questions
            }
            acc.add_product(a, b);
        }
        for &(a, b) in &pairs {
            if (a * b).is_nan() || f64::from(a) * f64::from(b) == 0.0 {
                continue;
            }
            acc.add_product(-a, b);
        }
        prop_assert!(acc.is_zero(), "residue after cancelling all products");
    }

    /// ulp is positive and bounds the compose rounding error.
    #[test]
    fn ulp_positive(x in finite_f32()) {
        prop_assert!(ulp(x) > 0.0);
    }
}
