//! The wide (Kulisch-style) accumulator behind the NTX FMAC unit.
//!
//! §II-C of the paper: *"It is based on a Partial Carry-Save (PCS)
//! accumulator which aggregates the 48 bit multiplication result at full
//! fixed-point precision (≈300 bit). After accumulation the partial sums
//! are reduced in multiple pipelined segments. [...] The wide accumulator
//! and deferred rounding allows NTX to achieve higher precision than
//! conventional FPUs."*
//!
//! The model below keeps the running sum as a 640-bit two's-complement
//! fixed-point number whose bit 0 weighs 2^-298 — wide enough to hold
//! *any* product of two finite `f32` values exactly (significand 48 bits,
//! LSB weight down to 2^-298, magnitude up to almost 2^256) with headroom
//! for at least 2^85 accumulation steps. Rounding to `f32`
//! (round-to-nearest-even) happens once, at write-back, exactly like the
//! deferred rounding of the silicon.

use crate::float::{classify, compose, decompose, FloatClass};

/// Weight of bit 0 of the accumulator is 2^[`LSB_EXP`].
const LSB_EXP: i32 = -298;
/// Number of 64-bit limbs in the fixed-point window.
const LIMBS: usize = 10;

/// Number of 32-bit words in the lossless spill image of one
/// accumulator: 20 limb words (ten 64-bit limbs, low word first) plus
/// one sticky-state word, padded to an even count so consecutive spill
/// slots keep alternating TCDM bank parity.
pub const SPILL_WORDS: usize = 22;

/// Byte size of one spill image ([`SPILL_WORDS`] × 4).
pub const SPILL_BYTES: u32 = (SPILL_WORDS as u32) * 4;

/// Sticky special-value state of the accumulator.
///
/// IEEE special inputs do not have a fixed-point representation; the
/// hardware handles them with sticky flags that override the numeric
/// result at write-back, which this enum mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccuState {
    /// All inputs so far were finite; the fixed-point sum is exact.
    #[default]
    Exact,
    /// A positive infinity was accumulated (and no negative one).
    PosInf,
    /// A negative infinity was accumulated (and no positive one).
    NegInf,
    /// A NaN was accumulated, or infinities of both signs collided,
    /// or an `inf * 0` product was formed.
    Nan,
}

/// Exact fixed-point accumulator for sums of `f32` products.
///
/// The 640-bit window is held as a tracked *occupied-limb* range:
/// limbs at index `occ` and above are implicitly equal to `ext` (the
/// all-zero or all-one sign fill of the two's-complement value), so
/// carries and borrows stop at the window edge instead of rippling
/// across untouched limbs — the software analogue of the partial
/// carry-save segmentation of the silicon.
///
/// # Example
///
/// ```
/// use ntx_fpu::WideAccumulator;
///
/// let mut acc = WideAccumulator::new();
/// for _ in 0..10 {
///     acc.add_product(0.1, 1.0);
/// }
/// // 10 * 0.1 rounds to exactly 1.0 + 2^-23 with a single final rounding
/// // of the exact sum; a sequential f32 loop returns 1.0000001 as well
/// // here, but diverges for longer, cancelling sums.
/// let exact = acc.round();
/// assert!((exact - 1.0).abs() <= f32::EPSILON);
/// ```
#[derive(Debug, Clone)]
pub struct WideAccumulator {
    /// Materialised limbs; only `limbs[..occ]` are meaningful.
    limbs: [u64; LIMBS],
    /// Limbs at `occ..LIMBS` implicitly hold `ext`.
    occ: usize,
    /// Sign fill of the unmaterialised top: `0` or `u64::MAX`.
    ext: u64,
    /// Reference mode: the pre-overhaul behaviour — the window always
    /// spans every limb (carries ripple across the full 640 bits) and
    /// rounding extracts its window bit by bit. Kept as the live oracle
    /// the differential tests and the `report-simperf` baseline pin the
    /// occupied-limb window against.
    reference: bool,
    state: AccuState,
}

impl Default for WideAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Equality is on the denoted 640-bit value (plus sticky state), not on
/// the internal window split, which varies with operation history.
impl PartialEq for WideAccumulator {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && (0..LIMBS).all(|i| self.limb(i) == other.limb(i))
    }
}

impl Eq for WideAccumulator {}

impl WideAccumulator {
    /// Creates a cleared accumulator (value zero, state [`AccuState::Exact`]).
    #[must_use]
    pub fn new() -> Self {
        Self {
            limbs: [0; LIMBS],
            occ: 0,
            ext: 0,
            reference: false,
            state: AccuState::Exact,
        }
    }

    /// Creates a cleared accumulator running the pre-overhaul reference
    /// algorithms (flat full-width carry propagation, bit-serial
    /// rounding window) — bit-identical results, pre-overhaul cost.
    #[must_use]
    pub fn new_reference() -> Self {
        Self {
            limbs: [0; LIMBS],
            occ: LIMBS,
            ext: 0,
            reference: true,
            state: AccuState::Exact,
        }
    }

    /// Clears the accumulator to zero and resets the special state.
    pub fn clear(&mut self) {
        if self.reference {
            self.limbs = [0; LIMBS];
        } else {
            self.occ = 0;
        }
        self.ext = 0;
        self.state = AccuState::Exact;
    }

    /// Limb `i` of the denoted two's-complement value.
    fn limb(&self, i: usize) -> u64 {
        if i < self.occ {
            self.limbs[i]
        } else {
            self.ext
        }
    }

    /// Materialises the denoted value into a full limb array.
    fn materialize(&self) -> [u64; LIMBS] {
        let mut out = [self.ext; LIMBS];
        out[..self.occ].copy_from_slice(&self.limbs[..self.occ]);
        out
    }

    /// Returns the sticky special-value state.
    #[must_use]
    pub fn state(&self) -> AccuState {
        self.state
    }

    /// Returns true if the fixed-point sum is exactly zero and no special
    /// value was seen.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.state == AccuState::Exact
            && (self.occ == LIMBS || self.ext == 0)
            && self.limbs[..self.occ].iter().all(|&l| l == 0)
    }

    fn note_special(&mut self, incoming: AccuState) {
        use AccuState::*;
        self.state = match (self.state, incoming) {
            (Nan, _) | (_, Nan) => Nan,
            (PosInf, NegInf) | (NegInf, PosInf) => Nan,
            (PosInf, _) | (_, PosInf) => PosInf,
            (NegInf, _) | (_, NegInf) => NegInf,
            (Exact, Exact) => Exact,
        };
    }

    /// Accumulates the exact product `a * b`.
    ///
    /// Special values follow IEEE semantics with deferred resolution:
    /// NaN inputs and `0 * inf` poison the accumulator; infinities are
    /// sticky and signed, and opposite-signed infinities yield NaN.
    #[inline]
    pub fn add_product(&mut self, a: f32, b: f32) {
        match (classify(a), classify(b)) {
            (FloatClass::Nan, _) | (_, FloatClass::Nan) => {
                self.note_special(AccuState::Nan);
                return;
            }
            (FloatClass::Infinite, FloatClass::Zero) | (FloatClass::Zero, FloatClass::Infinite) => {
                self.note_special(AccuState::Nan);
                return;
            }
            (FloatClass::Infinite, _) | (_, FloatClass::Infinite) => {
                let neg = a.is_sign_negative() ^ b.is_sign_negative();
                self.note_special(if neg {
                    AccuState::NegInf
                } else {
                    AccuState::PosInf
                });
                return;
            }
            (FloatClass::Zero, _) | (_, FloatClass::Zero) => return,
            (FloatClass::Finite, FloatClass::Finite) => {}
        }
        let da = decompose(a);
        let db = decompose(b);
        // Two 24-bit significands: the exact product always fits u64.
        let product = u64::from(da.mantissa) * u64::from(db.mantissa);
        if product == 0 {
            return;
        }
        let exp = da.exp + db.exp;
        let bitpos = (exp - LSB_EXP) as u32;
        self.add_magnitude_u64(product, bitpos, da.negative ^ db.negative);
    }

    /// Accumulates a single `f32` value (used when the accumulator is
    /// initialised from memory, i.e. `accu = *AGU2` at the init level).
    pub fn add_value(&mut self, x: f32) {
        match classify(x) {
            FloatClass::Nan => self.note_special(AccuState::Nan),
            FloatClass::Infinite => self.note_special(if x > 0.0 {
                AccuState::PosInf
            } else {
                AccuState::NegInf
            }),
            FloatClass::Zero => {}
            FloatClass::Finite => {
                let d = decompose(x);
                if d.mantissa != 0 {
                    let bitpos = (d.exp - LSB_EXP) as u32;
                    self.add_magnitude_u64(u64::from(d.mantissa), bitpos, d.negative);
                }
            }
        }
    }

    /// Adds or subtracts `magnitude << bitpos` to the fixed-point
    /// window. Every `f32` value and every product of two `f32`
    /// significands fits one limb, so the shifted addend spans at most
    /// two words; a carry or borrow that survives past the occupied
    /// range is absorbed into the sign fill (`ext`) in O(1) instead of
    /// rippling through the untouched top limbs, which is what keeps
    /// alternating-sign accumulation cheap.
    #[inline]
    fn add_magnitude_u64(&mut self, magnitude: u64, bitpos: u32, negative: bool) {
        debug_assert!(bitpos as usize / 64 < LIMBS);
        let limb = (bitpos / 64) as usize;
        let off = bitpos % 64;
        let w0 = magnitude << off;
        let w1 = if off == 0 { 0 } else { magnitude >> (64 - off) };
        let end = (limb + 2).min(LIMBS);
        if end > self.occ {
            self.limbs[self.occ..end].fill(self.ext);
            self.occ = end;
        }
        debug_assert!(!self.reference || self.occ == LIMBS);
        if negative {
            let (r0, b0) = self.limbs[limb].overflowing_sub(w0);
            self.limbs[limb] = r0;
            let mut borrow = u64::from(b0);
            if limb + 1 < LIMBS {
                let (r1, b1) = self.limbs[limb + 1].overflowing_sub(w1);
                let (r2, b2) = r1.overflowing_sub(borrow);
                self.limbs[limb + 1] = r2;
                borrow = u64::from(b1) + u64::from(b2);
            }
            let mut i = end;
            while borrow != 0 && i < self.occ {
                let (r, b) = self.limbs[i].overflowing_sub(borrow);
                self.limbs[i] = r;
                borrow = u64::from(b);
                i += 1;
            }
            if borrow != 0 && i < LIMBS {
                self.limbs[i] = self.ext.wrapping_sub(borrow);
                self.occ = i + 1;
                self.ext = u64::MAX;
            }
        } else {
            let (r0, c0) = self.limbs[limb].overflowing_add(w0);
            self.limbs[limb] = r0;
            let mut carry = u64::from(c0);
            if limb + 1 < LIMBS {
                let (r1, c1) = self.limbs[limb + 1].overflowing_add(w1);
                let (r2, c2) = r1.overflowing_add(carry);
                self.limbs[limb + 1] = r2;
                carry = u64::from(c1) + u64::from(c2);
            }
            let mut i = end;
            while carry != 0 && i < self.occ {
                let (r, c) = self.limbs[i].overflowing_add(carry);
                self.limbs[i] = r;
                carry = u64::from(c);
                i += 1;
            }
            if carry != 0 && i < LIMBS {
                self.limbs[i] = self.ext.wrapping_add(carry);
                self.occ = i + 1;
                self.ext = 0;
            }
        }
    }

    /// Rounds the accumulated sum to `f32` (round-to-nearest-even).
    ///
    /// This is the single deferred rounding of the write-back path; the
    /// accumulator itself is left unchanged so chained reductions can
    /// continue (matching the store-level semantics of the loop nest).
    #[must_use]
    pub fn round(&self) -> f32 {
        match self.state {
            AccuState::Nan => return f32::NAN,
            AccuState::PosInf => return f32::INFINITY,
            AccuState::NegInf => return f32::NEG_INFINITY,
            AccuState::Exact => {}
        }
        // Determine sign from the two's-complement top bit and obtain
        // the magnitude — touching only the occupied limb window. For a
        // negative value the sign fill is all-ones, whose complement is
        // zero, so the negation's carry-out lands in at most one limb
        // above the window.
        let negative = self.limb(LIMBS - 1) >> 63 != 0;
        let mut mag = [0u64; LIMBS];
        let mut mag_len = self.occ;
        if negative {
            let mut carry = 1u64;
            for (m, &l) in mag.iter_mut().zip(&self.limbs[..self.occ]) {
                let (r, c) = (!l).overflowing_add(carry);
                *m = r;
                carry = u64::from(c);
            }
            if self.occ < LIMBS {
                mag[self.occ] = carry;
                mag_len = self.occ + 1;
            }
        } else {
            mag[..self.occ].copy_from_slice(&self.limbs[..self.occ]);
        }
        // Locate the most significant set bit.
        let Some(top_limb) = mag[..mag_len].iter().rposition(|&l| l != 0) else {
            return if negative { -0.0 } else { 0.0 };
        };
        let top_bit = 63 - mag[top_limb].leading_zeros() as usize;
        let h = top_limb * 64 + top_bit;
        // Extract a 96-bit window [low, h] into a u128 plus a sticky flag
        // for everything below. 96 bits comfortably exceed the 24-bit
        // significand + guard/round needed by `compose`. The window is
        // simply `mag >> low` (bits above `h` are zero), assembled from
        // the at most three limbs it straddles.
        let low = h.saturating_sub(95);
        if self.reference {
            // Pre-overhaul path: walk the window bit by bit.
            let mut window: u128 = 0;
            for pos in (low..=h).rev() {
                window = (window << 1) | u128::from((mag[pos / 64] >> (pos % 64)) & 1);
            }
            let mut sticky = false;
            for pos in 0..low {
                if (mag[pos / 64] >> (pos % 64)) & 1 == 1 {
                    sticky = true;
                    break;
                }
            }
            return compose(negative, window, low as i32 + LSB_EXP, sticky);
        }
        let lw = low / 64;
        let sh = (low % 64) as u32;
        let w0 = mag[lw];
        let w1 = if lw + 1 < LIMBS { mag[lw + 1] } else { 0 };
        let w2 = if lw + 2 < LIMBS { mag[lw + 2] } else { 0 };
        let mut window = ((u128::from(w1) << 64) | u128::from(w0)) >> sh;
        if sh > 0 {
            window |= u128::from(w2) << (128 - sh);
        }
        let sticky =
            mag[..lw].iter().any(|&l| l != 0) || (sh > 0 && mag[lw] & ((1u64 << sh) - 1) != 0);
        compose(negative, window, low as i32 + LSB_EXP, sticky)
    }

    /// Serialises the full accumulator — 640-bit value plus sticky
    /// state — into [`SPILL_WORDS`] little-endian 32-bit words. The
    /// image is canonical (materialised limbs, window split erased), so
    /// two accumulators denoting the same value spill identically, and
    /// a [`load_words`](Self::load_words) round trip is lossless: this
    /// is what makes split-K accumulation passes bit-exact.
    #[must_use]
    pub fn to_words(&self) -> [u32; SPILL_WORDS] {
        let mut out = [0u32; SPILL_WORDS];
        for (i, &l) in self.materialize().iter().enumerate() {
            out[2 * i] = l as u32;
            out[2 * i + 1] = (l >> 32) as u32;
        }
        out[2 * LIMBS] = match self.state {
            AccuState::Exact => 0,
            AccuState::PosInf => 1,
            AccuState::NegInf => 2,
            AccuState::Nan => 3,
        };
        out
    }

    /// Restores the accumulator from a [`to_words`](Self::to_words)
    /// image, replacing the current value and sticky state. The
    /// reference/windowed mode of `self` is kept; in windowed mode the
    /// occupied range is re-minimised against the image's sign fill, so
    /// a restore is as cheap to keep accumulating into as the original.
    pub fn load_words(&mut self, words: &[u32; SPILL_WORDS]) {
        for i in 0..LIMBS {
            self.limbs[i] = u64::from(words[2 * i]) | (u64::from(words[2 * i + 1]) << 32);
        }
        self.state = match words[2 * LIMBS] & 3 {
            0 => AccuState::Exact,
            1 => AccuState::PosInf,
            2 => AccuState::NegInf,
            _ => AccuState::Nan,
        };
        if self.reference {
            self.occ = LIMBS;
            self.ext = 0;
        } else {
            self.ext = if self.limbs[LIMBS - 1] >> 63 != 0 {
                u64::MAX
            } else {
                0
            };
            let mut occ = LIMBS;
            while occ > 0 && self.limbs[occ - 1] == self.ext {
                occ -= 1;
            }
            self.occ = occ;
        }
    }

    /// Lossy conversion of the accumulated value to `f64`, for debugging
    /// and error analysis. Special states map to the matching `f64`.
    #[must_use]
    pub fn to_f64_lossy(&self) -> f64 {
        match self.state {
            AccuState::Nan => return f64::NAN,
            AccuState::PosInf => return f64::INFINITY,
            AccuState::NegInf => return f64::NEG_INFINITY,
            AccuState::Exact => {}
        }
        let negative = self.limb(LIMBS - 1) >> 63 != 0;
        let mut mag = self.materialize();
        if negative {
            let mut carry = 1u64;
            for l in &mut mag {
                let (r, c) = (!*l).overflowing_add(carry);
                *l = r;
                carry = u64::from(c);
            }
        }
        let mut acc = 0f64;
        for (i, &l) in mag.iter().enumerate() {
            if l != 0 {
                acc += l as f64 * 2f64.powi(64 * i as i32 + LSB_EXP);
            }
        }
        if negative {
            -acc
        } else {
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc_of(pairs: &[(f32, f32)]) -> WideAccumulator {
        let mut acc = WideAccumulator::new();
        for &(a, b) in pairs {
            acc.add_product(a, b);
        }
        acc
    }

    #[test]
    fn empty_is_zero() {
        let acc = WideAccumulator::new();
        assert!(acc.is_zero());
        assert_eq!(acc.round(), 0.0);
        assert!(!acc.round().is_sign_negative());
    }

    #[test]
    fn single_product_exact() {
        let acc = acc_of(&[(1.5, 2.5)]);
        assert_eq!(acc.round(), 3.75);
    }

    #[test]
    fn negative_sum() {
        let acc = acc_of(&[(2.0, -3.0)]);
        assert_eq!(acc.round(), -6.0);
    }

    #[test]
    fn cancellation_is_exact() {
        // (1e8 * 1e8) + 1 - (1e8 * 1e8) == 1 exactly in the wide window,
        // while f32 FMA sequential accumulation loses the 1 entirely.
        let acc = acc_of(&[(1.0e8, 1.0e8), (1.0, 1.0), (-1.0e8, 1.0e8)]);
        assert_eq!(acc.round(), 1.0);
        let seq = (1.0e8f32).mul_add(1.0e8, 0.0) + 1.0 + (-1.0e8f32) * 1.0e8;
        assert_ne!(seq, 1.0);
    }

    #[test]
    fn subnormal_products() {
        let tiny = f32::from_bits(1); // 2^-149
        let mut acc = WideAccumulator::new();
        // tiny * tiny = 2^-298 = exactly bit 0 of the window.
        acc.add_product(tiny, tiny);
        assert!(!acc.is_zero());
        // 2^-298 rounds to zero in f32...
        assert_eq!(acc.round(), 0.0);
        // ...but accumulating 2^149 of them yields exactly tiny.
        let mut acc = WideAccumulator::new();
        acc.add_product(tiny, 1.0);
        assert_eq!(acc.round(), tiny);
    }

    #[test]
    fn max_products_do_not_wrap() {
        let mut acc = WideAccumulator::new();
        for _ in 0..1000 {
            acc.add_product(f32::MAX, f32::MAX);
        }
        assert_eq!(acc.round(), f32::INFINITY);
        for _ in 0..1000 {
            acc.add_product(-f32::MAX, f32::MAX);
        }
        assert_eq!(acc.round(), 0.0);
        assert!(acc.is_zero());
    }

    #[test]
    fn nan_is_sticky() {
        let mut acc = WideAccumulator::new();
        acc.add_product(f32::NAN, 1.0);
        acc.add_product(1.0, 1.0);
        assert!(acc.round().is_nan());
        assert_eq!(acc.state(), AccuState::Nan);
    }

    #[test]
    fn zero_times_inf_is_nan() {
        let mut acc = WideAccumulator::new();
        acc.add_product(0.0, f32::INFINITY);
        assert!(acc.round().is_nan());
    }

    #[test]
    fn opposite_infinities_are_nan() {
        let mut acc = WideAccumulator::new();
        acc.add_product(f32::INFINITY, 1.0);
        assert_eq!(acc.state(), AccuState::PosInf);
        acc.add_product(1.0, f32::NEG_INFINITY);
        assert!(acc.round().is_nan());
    }

    #[test]
    fn signed_infinity_product() {
        let mut acc = WideAccumulator::new();
        acc.add_product(-2.0, f32::INFINITY);
        assert_eq!(acc.round(), f32::NEG_INFINITY);
    }

    #[test]
    fn add_value_roundtrips() {
        for &x in &[0.5f32, -123.25, 1.0e-40, 3.0e38] {
            let mut acc = WideAccumulator::new();
            acc.add_value(x);
            assert_eq!(acc.round(), x);
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut acc = acc_of(&[(f32::NAN, 1.0)]);
        acc.clear();
        assert!(acc.is_zero());
        assert_eq!(acc.state(), AccuState::Exact);
    }

    #[test]
    fn harmonic_sum_matches_f64_reference() {
        // Sum of 1/k for k in 1..=10000 computed exactly then rounded once
        // must match the f64 reference rounded to f32.
        let mut acc = WideAccumulator::new();
        let mut reference = 0f64;
        for k in 1..=10_000 {
            let x = 1.0f32 / k as f32;
            acc.add_product(x, 1.0);
            reference += f64::from(x);
        }
        assert_eq!(acc.round(), reference as f32);
    }

    #[test]
    fn sign_fill_crossings_stay_exact() {
        // Alternating signs around zero force carries/borrows into the
        // unmaterialised sign fill every step — the case the occupied-
        // limb window must absorb in O(1) without losing exactness.
        let mut acc = WideAccumulator::new();
        let big = 3.0e37f32;
        let tiny = f32::from_bits(1);
        for _ in 0..4 {
            acc.add_product(big, big);
            acc.add_product(-big, big);
        }
        acc.add_product(tiny, tiny); // 2^-298: the lowest window bit
        acc.add_product(big, big);
        acc.add_product(-big, big);
        // Exact residue: one LSB, far below any materialisation noise.
        let mut expect = WideAccumulator::new();
        expect.add_product(tiny, tiny);
        assert_eq!(acc, expect);
        assert!(!acc.is_zero());
        acc.add_product(-tiny, tiny);
        assert!(acc.is_zero());
        assert_eq!(acc.round(), 0.0);
    }

    #[test]
    fn equality_ignores_window_split() {
        // Same value reached through different operation histories (and
        // hence different internal occ/ext splits) must compare equal.
        let mut a = WideAccumulator::new();
        a.add_product(f32::MAX, f32::MAX);
        a.add_product(-f32::MAX, f32::MAX);
        a.add_product(2.0, 3.0);
        let mut b = WideAccumulator::new();
        b.add_product(2.0, 3.0);
        assert_eq!(a, b);
    }

    #[test]
    fn to_f64_lossy_tracks_value() {
        let acc = acc_of(&[(3.0, 4.0), (0.5, 0.5)]);
        assert!((acc.to_f64_lossy() - 12.25).abs() < 1e-12);
    }

    #[test]
    fn spill_restore_roundtrips_value_and_state() {
        // A spill/restore in the middle of a long cancelling sum must
        // be invisible: the resumed accumulator rounds identically to
        // one that never spilled.
        let tiny = f32::from_bits(1);
        let cases: &[&[(f32, f32)]] = &[
            &[(1.0e8, 1.0e8), (1.0, 1.0)],
            &[(-2.5, 4.0), (tiny, tiny)],
            &[(f32::MAX, f32::MAX)],
            &[(f32::INFINITY, 1.0)],
            &[(f32::NAN, 1.0)],
            &[(-1.0, f32::INFINITY)],
            &[],
        ];
        let tail: &[(f32, f32)] = &[(-1.0e8, 1.0e8), (0.25, -3.0), (tiny, -1.0)];
        for &head in cases {
            let mut oracle = acc_of(head);
            let words = oracle.to_words();
            let mut resumed = WideAccumulator::new();
            resumed.add_product(99.0, -7.0); // stale junk the restore must erase
            resumed.load_words(&words);
            assert_eq!(resumed, oracle);
            for &(a, b) in tail {
                oracle.add_product(a, b);
                resumed.add_product(a, b);
            }
            assert_eq!(resumed.round().to_bits(), oracle.round().to_bits());
            assert_eq!(resumed.state(), oracle.state());
        }
    }

    #[test]
    fn spill_images_are_canonical_across_modes_and_histories() {
        // Same denoted value through different histories (different
        // internal window splits) and in reference mode must serialise
        // to the identical image — split-K spills are then independent
        // of the accumulator implementation variant.
        let mut a = WideAccumulator::new();
        a.add_product(f32::MAX, f32::MAX);
        a.add_product(-f32::MAX, f32::MAX);
        a.add_product(2.0, 3.0);
        let mut b = WideAccumulator::new_reference();
        b.add_product(2.0, 3.0);
        assert_eq!(a.to_words(), b.to_words());
        // Restore into a reference accumulator behaves identically too.
        let mut r = WideAccumulator::new_reference();
        r.load_words(&a.to_words());
        r.add_product(-2.0, 3.0);
        assert!(r.is_zero());
    }
}
