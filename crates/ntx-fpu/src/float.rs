//! Bit-level helpers for IEEE 754 binary32 values.
//!
//! These are the primitives from which the wide accumulator is built:
//! exact decomposition of an `f32` into an integer significand scaled by a
//! power of two, and the inverse composition with round-to-nearest-even.

/// Classification of an `f32` as seen by the NTX datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatClass {
    /// Positive or negative zero.
    Zero,
    /// Subnormal or normal finite non-zero value.
    Finite,
    /// Positive or negative infinity.
    Infinite,
    /// Not a number.
    Nan,
}

/// Exact decomposition of a finite `f32`: `value = sign * mantissa * 2^exp`.
///
/// `mantissa` is at most 2^24 - 1 and `exp >= -149`. Zero decomposes to a
/// zero mantissa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposed {
    /// True when the value is negative (includes `-0.0`).
    pub negative: bool,
    /// Integer significand, `< 2^24`.
    pub mantissa: u32,
    /// Power-of-two scale of the least significant mantissa bit.
    pub exp: i32,
}

/// Classifies a value the way the datapath does.
#[must_use]
#[inline]
pub fn classify(x: f32) -> FloatClass {
    if x.is_nan() {
        FloatClass::Nan
    } else if x.is_infinite() {
        FloatClass::Infinite
    } else if x == 0.0 {
        FloatClass::Zero
    } else {
        FloatClass::Finite
    }
}

/// Decomposes a finite `f32` into sign, integer significand and exponent.
///
/// The result satisfies `value == sign * mantissa as f64 * 2f64.powi(exp)`
/// exactly.
///
/// # Panics
///
/// Panics if `x` is NaN or infinite; the datapath filters those earlier.
#[must_use]
#[inline]
pub fn decompose(x: f32) -> Decomposed {
    assert!(x.is_finite(), "decompose requires a finite value");
    let bits = x.to_bits();
    let negative = bits >> 31 != 0;
    let biased = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;
    if biased == 0 {
        // Subnormal (or zero): value = frac * 2^-149.
        Decomposed {
            negative,
            mantissa: frac,
            exp: -149,
        }
    } else {
        // Normal: value = (2^23 + frac) * 2^(biased - 127 - 23).
        Decomposed {
            negative,
            mantissa: (1 << 23) | frac,
            exp: biased - 127 - 23,
        }
    }
}

/// Composes an `f32` from a sign, an arbitrary-width magnitude and the
/// power-of-two weight of the magnitude's least significant bit, rounding
/// to nearest-even. Overflow returns the correctly signed infinity.
///
/// `magnitude` is passed as a 128-bit window holding the most significant
/// bits of the value with `lsb_exp` the weight of window bit 0; callers
/// must set `sticky` if any non-zero bits were discarded below the window.
#[must_use]
pub fn compose(negative: bool, magnitude: u128, lsb_exp: i32, sticky: bool) -> f32 {
    if magnitude == 0 {
        return if sticky {
            // All information was below the window: underflow to signed zero
            // (the wide accumulator never does this; defensive only).
            if negative {
                -0.0
            } else {
                0.0
            }
        } else if negative {
            -0.0
        } else {
            0.0
        };
    }
    let top = 127 - magnitude.leading_zeros() as i32; // index of MSB
    let msb_exp = lsb_exp + top; // weight of the MSB = 2^msb_exp
    if msb_exp > 127 {
        return if negative {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        };
    }
    // Target LSB weight of the 24-bit significand.
    let target_lsb = if msb_exp < -126 {
        -149 // subnormal: fixed quantum
    } else {
        msb_exp - 23
    };
    let shift = target_lsb - lsb_exp; // how many window bits fall below target
    let (mut mant, round_bit, extra_sticky) = if shift <= 0 {
        // Window is coarser than (or equal to) the target quantum: exact shift up.
        let up = (-shift) as u32;
        if up >= 104 {
            // Magnitude would exceed 2^128 after shift; cannot happen because
            // msb_exp <= 127 bounds `top + up` to < 128 + 24.
            (0u128, false, true)
        } else {
            (magnitude << up, false, false)
        }
    } else {
        let down = shift as u32;
        if down >= 128 {
            (0u128, false, true)
        } else {
            let kept = magnitude >> down;
            let dropped = magnitude & ((1u128 << down) - 1);
            let round_bit = (dropped >> (down - 1)) & 1 == 1;
            let below = dropped & ((1u128 << (down - 1)) - 1);
            (kept, round_bit, below != 0)
        }
    };
    let any_sticky = sticky || extra_sticky;
    // Round to nearest, ties to even.
    if round_bit && (any_sticky || mant & 1 == 1) {
        mant += 1;
    }
    // Rounding may have carried into a new bit (e.g. 0xFFFFFF -> 0x1000000).
    let mut exp = target_lsb;
    if mant >> 24 != 0 {
        // keep 24 bits
        let over = 128 - 24 - mant.leading_zeros() as i32;
        mant >>= over;
        exp += over;
    }
    debug_assert!(mant < (1 << 24));
    // Assemble the binary32 directly: a 24-bit significand with LSB
    // weight 2^exp. `mant < 2^23` only happens on the subnormal grid
    // (exp == -149, including exact zero); otherwise bit 23 is the
    // implicit one and the biased exponent is exp + 23 + 127.
    let mant = mant as u32;
    let bits = if mant >> 23 == 0 {
        debug_assert!(mant == 0 || exp == -149);
        mant
    } else {
        let biased = exp + 23 + 127;
        if biased >= 255 {
            0x7f80_0000 // rounding carried past f32::MAX: infinity
        } else {
            ((biased as u32) << 23) | (mant & 0x7f_ffff)
        }
    };
    let out = f32::from_bits(bits);
    debug_assert_eq!(
        out,
        (mant as f64 * 2f64.powi(exp)) as f32,
        "bit assembly must match the arithmetic composition"
    );
    if negative {
        -out
    } else {
        out
    }
}

/// Returns the unit in the last place of `x` (the gap to the next
/// representable value away from zero), used by error statistics.
///
/// # Panics
///
/// Panics if `x` is NaN or infinite.
#[must_use]
pub fn ulp(x: f32) -> f32 {
    assert!(x.is_finite(), "ulp requires a finite value");
    let a = x.abs();
    let next = f32::from_bits(a.to_bits() + 1);
    if next.is_infinite() {
        a - f32::from_bits(a.to_bits() - 1)
    } else {
        next - a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_normal() {
        let d = decompose(1.5);
        assert!(!d.negative);
        assert_eq!(d.mantissa, 0xc0_0000);
        assert_eq!(d.exp, -23);
        assert_eq!(d.mantissa as f64 * 2f64.powi(d.exp), 1.5);
    }

    #[test]
    fn decompose_subnormal() {
        let x = f32::from_bits(3); // 3 * 2^-149
        let d = decompose(x);
        assert_eq!(d.mantissa, 3);
        assert_eq!(d.exp, -149);
    }

    #[test]
    fn decompose_negative_zero() {
        let d = decompose(-0.0);
        assert!(d.negative);
        assert_eq!(d.mantissa, 0);
    }

    #[test]
    fn decompose_max() {
        let d = decompose(f32::MAX);
        assert_eq!(d.mantissa, 0xff_ffff);
        assert_eq!(d.exp, 104);
    }

    #[test]
    fn compose_roundtrip_simple() {
        for &x in &[1.0f32, -2.5, 1.0e-40, 3.4e38, 1.1754944e-38, -0.0] {
            let d = decompose(x);
            let y = compose(d.negative, d.mantissa as u128, d.exp, false);
            assert_eq!(x.to_bits(), y.to_bits(), "roundtrip of {x}");
        }
    }

    #[test]
    fn compose_overflow_to_infinity() {
        let y = compose(false, 1, 128, false);
        assert_eq!(y, f32::INFINITY);
        let y = compose(true, 1, 128, false);
        assert_eq!(y, f32::NEG_INFINITY);
    }

    #[test]
    fn compose_rounds_to_even() {
        // 2^24 + 1 is halfway between 2^24 and 2^24 + 2 -> rounds to 2^24.
        let y = compose(false, (1 << 24) | 1, 0, false);
        assert_eq!(y, 16777216.0);
        // With a sticky bit it must round up.
        let y = compose(false, (1 << 24) | 1, 0, true);
        assert_eq!(y, 16777218.0);
    }

    #[test]
    fn compose_carry_propagation() {
        // 0xFFFFFF.8 rounds up to 0x1000000 which needs a renormalise.
        let y = compose(false, 0x1ff_ffff, -1, false);
        assert_eq!(y, 16777216.0);
    }

    #[test]
    fn compose_subnormal_rounding() {
        // Smallest subnormal / 2 with sticky rounds to smallest subnormal.
        let y = compose(false, 1, -150, true);
        assert_eq!(y, f32::from_bits(1));
        // Exactly half of the smallest subnormal ties to even zero.
        let y = compose(false, 1, -150, false);
        assert_eq!(y, 0.0);
    }

    #[test]
    fn ulp_of_one() {
        assert_eq!(ulp(1.0), f32::EPSILON);
        assert_eq!(ulp(-1.0), f32::EPSILON);
    }

    #[test]
    fn classify_all() {
        assert_eq!(classify(0.0), FloatClass::Zero);
        assert_eq!(classify(-0.0), FloatClass::Zero);
        assert_eq!(classify(1.0), FloatClass::Finite);
        assert_eq!(classify(f32::MIN_POSITIVE / 2.0), FloatClass::Finite);
        assert_eq!(classify(f32::INFINITY), FloatClass::Infinite);
        assert_eq!(classify(f32::NAN), FloatClass::Nan);
    }
}
