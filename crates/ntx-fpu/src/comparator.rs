//! Comparator and index counter of the NTX FPU.
//!
//! §II-C: *"An additional comparator, index counter, and ALU register
//! enable various additional commands such as finding minima/maxima,
//! ReLU, thresholding and masking, and memcpy/memset."*
//!
//! The comparator tracks a running extremum together with the innermost
//! loop index at which it occurred, which is what makes single-pass
//! argmin/argmax reductions possible.

/// Whether the comparator searches for the minimum or the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareMode {
    /// Track the smallest value seen.
    Min,
    /// Track the largest value seen.
    Max,
}

/// Running min/max reduction with an index counter.
///
/// NaN inputs are ignored (they never become the extremum), mirroring the
/// "maxNum"-style semantics that hardware comparators implement; an
/// all-NaN stream leaves the comparator empty.
///
/// # Example
///
/// ```
/// use ntx_fpu::{Comparator, CompareMode};
///
/// let mut cmp = Comparator::new(CompareMode::Max);
/// for (i, &x) in [1.0f32, 7.5, -2.0, 7.5].iter().enumerate() {
///     cmp.observe(x, i as u32);
/// }
/// assert_eq!(cmp.value(), Some(7.5));
/// assert_eq!(cmp.index(), Some(1)); // first occurrence wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    mode: CompareMode,
    best: Option<(f32, u32)>,
}

impl Comparator {
    /// Creates an empty comparator for the given search mode.
    #[must_use]
    pub fn new(mode: CompareMode) -> Self {
        Self { mode, best: None }
    }

    /// Returns the search mode.
    #[must_use]
    pub fn mode(&self) -> CompareMode {
        self.mode
    }

    /// Feeds one element and its index through the comparator.
    ///
    /// Ties keep the earlier index (the hardware only updates on a strict
    /// improvement).
    pub fn observe(&mut self, value: f32, index: u32) {
        if value.is_nan() {
            return;
        }
        let improved = match self.best {
            None => true,
            Some((best, _)) => match self.mode {
                CompareMode::Min => value < best,
                CompareMode::Max => value > best,
            },
        };
        if improved {
            self.best = Some((value, index));
        }
    }

    /// Current extremum, if any non-NaN element was observed.
    #[must_use]
    pub fn value(&self) -> Option<f32> {
        self.best.map(|(v, _)| v)
    }

    /// Index of the current extremum, if any.
    #[must_use]
    pub fn index(&self) -> Option<u32> {
        self.best.map(|(_, i)| i)
    }

    /// Clears the comparator for the next reduction.
    pub fn clear(&mut self) {
        self.best = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_tracks_smallest() {
        let mut cmp = Comparator::new(CompareMode::Min);
        for (i, &x) in [3.0f32, -1.0, 2.0, -1.0].iter().enumerate() {
            cmp.observe(x, i as u32);
        }
        assert_eq!(cmp.value(), Some(-1.0));
        assert_eq!(cmp.index(), Some(1));
    }

    #[test]
    fn empty_comparator() {
        let cmp = Comparator::new(CompareMode::Max);
        assert_eq!(cmp.value(), None);
        assert_eq!(cmp.index(), None);
    }

    #[test]
    fn nan_ignored() {
        let mut cmp = Comparator::new(CompareMode::Max);
        cmp.observe(f32::NAN, 0);
        assert_eq!(cmp.value(), None);
        cmp.observe(1.0, 1);
        cmp.observe(f32::NAN, 2);
        assert_eq!(cmp.value(), Some(1.0));
        assert_eq!(cmp.index(), Some(1));
    }

    #[test]
    fn negative_zero_vs_zero_is_a_tie() {
        // -0.0 < 0.0 is false in IEEE comparisons, so the first one wins.
        let mut cmp = Comparator::new(CompareMode::Min);
        cmp.observe(0.0, 0);
        cmp.observe(-0.0, 1);
        assert_eq!(cmp.index(), Some(0));
    }

    #[test]
    fn clear_resets() {
        let mut cmp = Comparator::new(CompareMode::Min);
        cmp.observe(1.0, 0);
        cmp.clear();
        assert_eq!(cmp.value(), None);
    }

    #[test]
    fn infinity_participates() {
        let mut cmp = Comparator::new(CompareMode::Max);
        cmp.observe(1.0, 0);
        cmp.observe(f32::INFINITY, 1);
        assert_eq!(cmp.value(), Some(f32::INFINITY));
        assert_eq!(cmp.index(), Some(1));
    }
}
