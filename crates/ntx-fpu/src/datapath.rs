//! The complete FPU datapath: FMAC + comparator + ALU register.
//!
//! [`FpuDatapath`] is the stateful execution unit the NTX controller
//! issues micro-instructions to (Fig. 2 of the paper). It bundles the
//! wide accumulator, the comparator with its index counter, and the ALU
//! scalar register, and implements the per-cycle element operations of
//! every NTX command.

use crate::comparator::{Comparator, CompareMode};
use crate::kulisch::WideAccumulator;

/// Micro-operation classes the controller can issue, used both to drive
/// [`FpuDatapath::execute`] and for flop accounting in the performance
/// counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpuOp {
    /// `accu += x * y` — the fast FMAC path (2 flop).
    Mac,
    /// `out = x + y` (1 flop).
    Add,
    /// `out = x - y` (1 flop).
    Sub,
    /// `out = x * y` (1 flop).
    Mul,
    /// Running minimum with index counter (1 flop-equivalent compare).
    Min,
    /// Running maximum with index counter (1 flop-equivalent compare).
    Max,
    /// `out = max(x, 0)` (1 flop-equivalent compare).
    Relu,
    /// `out = (x > r) ? y : 0` — threshold & mask (1 flop-equivalent).
    ThresholdMask,
    /// `out = x` — data movement only (0 flop).
    Copy,
    /// `out = r` — data movement only (0 flop).
    Set,
}

impl FpuOp {
    /// Floating-point operations retired per issued element, the figure
    /// used by Fig. 3b of the paper ("commands and their throughput").
    #[must_use]
    pub fn flops_per_element(self) -> u64 {
        match self {
            FpuOp::Mac => 2,
            FpuOp::Add
            | FpuOp::Sub
            | FpuOp::Mul
            | FpuOp::Min
            | FpuOp::Max
            | FpuOp::Relu
            | FpuOp::ThresholdMask => 1,
            FpuOp::Copy | FpuOp::Set => 0,
        }
    }

    /// True if the op reduces into the accumulator/comparator instead of
    /// producing a per-element result.
    #[must_use]
    pub fn is_reduction(self) -> bool {
        matches!(self, FpuOp::Mac | FpuOp::Min | FpuOp::Max)
    }
}

/// The stateful FPU of one NTX co-processor.
///
/// # Example
///
/// ```
/// use ntx_fpu::{FpuDatapath, FpuOp};
///
/// let mut fpu = FpuDatapath::new();
/// fpu.init_accumulator(None); // accu = 0
/// fpu.execute(FpuOp::Mac, 2.0, 3.0, 0);
/// fpu.execute(FpuOp::Mac, 4.0, 0.5, 1);
/// assert_eq!(fpu.store_accumulator(), 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct FpuDatapath {
    accumulator: WideAccumulator,
    min_cmp: Comparator,
    max_cmp: Comparator,
    alu_register: f32,
}

impl Default for FpuDatapath {
    fn default() -> Self {
        Self::new()
    }
}

impl FpuDatapath {
    /// Creates a datapath with a cleared accumulator and `R = 0`.
    #[must_use]
    pub fn new() -> Self {
        Self {
            accumulator: WideAccumulator::new(),
            min_cmp: Comparator::new(CompareMode::Min),
            max_cmp: Comparator::new(CompareMode::Max),
            alu_register: 0.0,
        }
    }

    /// Swaps the wide accumulator for its pre-overhaul reference
    /// implementation (bit-identical results, full-width carry ripple
    /// and bit-serial rounding) — the FPU of the simulator's pure
    /// per-cycle baseline. Clears the accumulator.
    pub fn use_reference_accumulator(&mut self) {
        self.accumulator = WideAccumulator::new_reference();
    }

    /// Sets the ALU scalar register `R`.
    pub fn set_register(&mut self, r: f32) {
        self.alu_register = r;
    }

    /// Returns the ALU scalar register `R`.
    #[must_use]
    #[inline]
    pub fn register(&self) -> f32 {
        self.alu_register
    }

    /// Initialises the accumulator and comparators at the *init level* of
    /// the loop nest: `Some(v)` loads `v` (the `accu = *AGU2` option of
    /// Fig. 3a), `None` clears to zero.
    #[inline]
    pub fn init_accumulator(&mut self, initial: Option<f32>) {
        self.accumulator.clear();
        self.min_cmp.clear();
        self.max_cmp.clear();
        if let Some(v) = initial {
            self.accumulator.add_value(v);
            self.min_cmp.observe(v, u32::MAX);
            self.max_cmp.observe(v, u32::MAX);
        }
    }

    /// Executes one element operation. Returns the per-element output for
    /// non-reduction ops, `None` for reductions (their result is read at
    /// the store level via [`Self::store_accumulator`]).
    ///
    /// `index` is the value of the innermost index counter, used by the
    /// argmin/argmax machinery.
    #[inline]
    pub fn execute(&mut self, op: FpuOp, x: f32, y: f32, index: u32) -> Option<f32> {
        match op {
            FpuOp::Mac => {
                self.accumulator.add_product(x, y);
                None
            }
            FpuOp::Min => {
                self.min_cmp.observe(x, index);
                None
            }
            FpuOp::Max => {
                self.max_cmp.observe(x, index);
                None
            }
            FpuOp::Add => Some(x + y),
            FpuOp::Sub => Some(x - y),
            FpuOp::Mul => Some(x * y),
            FpuOp::Relu => Some(if x > 0.0 { x } else { 0.0 }),
            FpuOp::ThresholdMask => Some(if x > self.alu_register { y } else { 0.0 }),
            FpuOp::Copy => Some(x),
            FpuOp::Set => Some(self.alu_register),
        }
    }

    /// Feeds a batch of MAC element pairs straight into the wide
    /// accumulator — the burst fast path of the simulator, equivalent to
    /// one [`FpuDatapath::execute`] with [`FpuOp::Mac`] per pair.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn mac_slices(&mut self, xs: &[f32], ys: &[f32]) {
        assert_eq!(xs.len(), ys.len(), "operand slices must match");
        for (&x, &y) in xs.iter().zip(ys) {
            self.accumulator.add_product(x, y);
        }
    }

    /// Feeds a batch of MAC elements with the scalar register operand
    /// (`accu += x * R` per element) — the burst fast path for
    /// register-operand MAC commands.
    pub fn mac_register_slice(&mut self, xs: &[f32]) {
        let r = self.alu_register;
        for &x in xs {
            self.accumulator.add_product(x, r);
        }
    }

    /// Reads the reduction result at the *store level*: the rounded wide
    /// accumulator. The accumulator keeps its exact state so outer loop
    /// levels can continue accumulating.
    #[must_use]
    #[inline]
    pub fn store_accumulator(&self) -> f32 {
        self.accumulator.round()
    }

    /// Result of a `Min` reduction (value), or 0 if nothing was observed.
    #[must_use]
    pub fn store_min(&self) -> f32 {
        self.min_cmp.value().unwrap_or(0.0)
    }

    /// Result of a `Max` reduction (value), or 0 if nothing was observed.
    #[must_use]
    pub fn store_max(&self) -> f32 {
        self.max_cmp.value().unwrap_or(0.0)
    }

    /// Index counter value for the argmin result.
    #[must_use]
    pub fn argmin(&self) -> Option<u32> {
        self.min_cmp.index().filter(|&i| i != u32::MAX)
    }

    /// Index counter value for the argmax result.
    #[must_use]
    pub fn argmax(&self) -> Option<u32> {
        self.max_cmp.index().filter(|&i| i != u32::MAX)
    }

    /// Initialises the accumulator from a full-precision spill image
    /// (the `AccuInit::Wide` option): the exact 640-bit value and
    /// sticky state of a previous accumulation pass resume as if the
    /// pass boundary never happened. Comparators clear as on any init.
    pub fn init_accumulator_wide(&mut self, words: &[u32; crate::kulisch::SPILL_WORDS]) {
        self.min_cmp.clear();
        self.max_cmp.clear();
        self.accumulator.load_words(words);
    }

    /// Serialises the accumulator into its lossless spill image (the
    /// wide-store path): [`SPILL_WORDS`](crate::SPILL_WORDS) 32-bit
    /// words. Like [`store_accumulator`](Self::store_accumulator), the
    /// accumulator itself is left unchanged.
    #[must_use]
    pub fn store_accumulator_wide(&self) -> [u32; crate::kulisch::SPILL_WORDS] {
        self.accumulator.to_words()
    }

    /// Direct access to the wide accumulator (used by precision studies).
    #[must_use]
    pub fn accumulator(&self) -> &WideAccumulator {
        &self.accumulator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_reduction() {
        let mut fpu = FpuDatapath::new();
        fpu.init_accumulator(None);
        for i in 1..=4 {
            fpu.execute(FpuOp::Mac, i as f32, i as f32, i - 1);
        }
        assert_eq!(fpu.store_accumulator(), 30.0); // 1+4+9+16
    }

    #[test]
    fn mac_with_memory_init() {
        let mut fpu = FpuDatapath::new();
        fpu.init_accumulator(Some(10.0));
        fpu.execute(FpuOp::Mac, 2.0, 2.0, 0);
        assert_eq!(fpu.store_accumulator(), 14.0);
    }

    #[test]
    fn elementwise_ops() {
        let mut fpu = FpuDatapath::new();
        assert_eq!(fpu.execute(FpuOp::Add, 2.0, 3.0, 0), Some(5.0));
        assert_eq!(fpu.execute(FpuOp::Sub, 2.0, 3.0, 0), Some(-1.0));
        assert_eq!(fpu.execute(FpuOp::Mul, 2.0, 3.0, 0), Some(6.0));
        assert_eq!(fpu.execute(FpuOp::Copy, 7.0, 0.0, 0), Some(7.0));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut fpu = FpuDatapath::new();
        assert_eq!(fpu.execute(FpuOp::Relu, -1.5, 0.0, 0), Some(0.0));
        assert_eq!(fpu.execute(FpuOp::Relu, 1.5, 0.0, 0), Some(1.5));
        // NaN propagates as 0 through the `>` comparison, like hardware.
        assert_eq!(fpu.execute(FpuOp::Relu, f32::NAN, 0.0, 0), Some(0.0));
    }

    #[test]
    fn threshold_mask_uses_register() {
        let mut fpu = FpuDatapath::new();
        fpu.set_register(0.5);
        assert_eq!(fpu.execute(FpuOp::ThresholdMask, 0.7, 42.0, 0), Some(42.0));
        assert_eq!(fpu.execute(FpuOp::ThresholdMask, 0.3, 42.0, 0), Some(0.0));
    }

    #[test]
    fn set_broadcasts_register() {
        let mut fpu = FpuDatapath::new();
        fpu.set_register(-3.25);
        assert_eq!(fpu.execute(FpuOp::Set, 0.0, 0.0, 0), Some(-3.25));
    }

    #[test]
    fn argmax_reduction() {
        let mut fpu = FpuDatapath::new();
        fpu.init_accumulator(None);
        for (i, &x) in [0.1f32, 0.9, 0.4].iter().enumerate() {
            fpu.execute(FpuOp::Max, x, 0.0, i as u32);
        }
        assert_eq!(fpu.store_max(), 0.9);
        assert_eq!(fpu.argmax(), Some(1));
    }

    #[test]
    fn argmin_with_memory_init_has_no_index() {
        let mut fpu = FpuDatapath::new();
        fpu.init_accumulator(Some(-100.0));
        fpu.execute(FpuOp::Min, 1.0, 0.0, 0);
        assert_eq!(fpu.store_min(), -100.0);
        assert_eq!(fpu.argmin(), None); // extremum came from memory init
    }

    #[test]
    fn mac_slices_match_per_element_execution() {
        let xs = [1.5f32, -2.0, 3.25, 0.5];
        let ys = [2.0f32, 4.0, -1.0, 8.0];
        let mut batched = FpuDatapath::new();
        batched.init_accumulator(None);
        batched.mac_slices(&xs, &ys);
        let mut stepped = FpuDatapath::new();
        stepped.init_accumulator(None);
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            stepped.execute(FpuOp::Mac, x, y, i as u32);
        }
        assert_eq!(batched.accumulator(), stepped.accumulator());
        // Register-operand variant.
        let mut reg = FpuDatapath::new();
        reg.set_register(2.5);
        reg.init_accumulator(None);
        reg.mac_register_slice(&xs);
        let mut reg_step = FpuDatapath::new();
        reg_step.set_register(2.5);
        reg_step.init_accumulator(None);
        for &x in &xs {
            reg_step.execute(FpuOp::Mac, x, 2.5, 0);
        }
        assert_eq!(reg.accumulator(), reg_step.accumulator());
    }

    #[test]
    fn flop_accounting() {
        assert_eq!(FpuOp::Mac.flops_per_element(), 2);
        assert_eq!(FpuOp::Add.flops_per_element(), 1);
        assert_eq!(FpuOp::Copy.flops_per_element(), 0);
        assert!(FpuOp::Mac.is_reduction());
        assert!(!FpuOp::Add.is_reduction());
    }
}
