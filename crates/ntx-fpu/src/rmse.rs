//! Error statistics used by the §II-C precision study.
//!
//! The paper reports that on a DNN convolution layer the RMSE of NTX's
//! deferred-rounding accumulator is **1.7× lower** than that of a
//! conventional 32-bit FPU. [`rmse_ratio_vs_fma`] reproduces that
//! experiment: it evaluates a batch of dot products with (a) the wide
//! accumulator and (b) a sequential `f32` FMA loop, measuring both
//! against an `f64` reference.

use crate::kulisch::WideAccumulator;

/// Aggregate error statistics of a computed series against a reference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Root-mean-squared error.
    pub rmse: f64,
    /// Largest absolute error.
    pub max_abs_err: f64,
    /// Number of samples aggregated.
    pub samples: usize,
}

/// Computes the RMSE of `computed` against `reference`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn rmse(computed: &[f32], reference: &[f64]) -> ErrorStats {
    assert_eq!(
        computed.len(),
        reference.len(),
        "rmse requires equally sized series"
    );
    if computed.is_empty() {
        return ErrorStats::default();
    }
    let mut sq = 0f64;
    let mut max_abs_err = 0f64;
    for (&c, &r) in computed.iter().zip(reference) {
        let e = f64::from(c) - r;
        sq += e * e;
        max_abs_err = max_abs_err.max(e.abs());
    }
    ErrorStats {
        rmse: (sq / computed.len() as f64).sqrt(),
        max_abs_err,
        samples: computed.len(),
    }
}

/// Runs the §II-C precision experiment on a batch of dot products.
///
/// Each row of `lhs`/`rhs` (of length `dot_len`) is reduced three ways:
/// via the wide accumulator, via a sequential `f32` FMA loop (what a
/// conventional single-cycle FMA FPU produces), and via `f64` as the
/// reference. Returns `(ntx_stats, fma_stats)`; the paper's figure of
/// merit is `fma_stats.rmse / ntx_stats.rmse` (≈1.7 on their layer).
///
/// Empty input (`dot_len == 0` or empty series) yields a pair of
/// default [`ErrorStats`] rather than panicking, so callers can feed
/// arbitrary measured batches straight in.
///
/// # Panics
///
/// Panics if the slice lengths are not multiples of `dot_len` or differ.
#[must_use]
pub fn rmse_ratio_vs_fma(lhs: &[f32], rhs: &[f32], dot_len: usize) -> (ErrorStats, ErrorStats) {
    if dot_len == 0 || lhs.is_empty() {
        assert_eq!(lhs.len(), rhs.len(), "operand series must match");
        return (ErrorStats::default(), ErrorStats::default());
    }
    assert_eq!(lhs.len(), rhs.len(), "operand series must match");
    assert_eq!(
        lhs.len() % dot_len,
        0,
        "series length must be a multiple of dot_len"
    );
    let rows = lhs.len() / dot_len;
    let mut ntx = Vec::with_capacity(rows);
    let mut fma = Vec::with_capacity(rows);
    let mut reference = Vec::with_capacity(rows);
    let mut acc = WideAccumulator::new();
    for row in 0..rows {
        let a = &lhs[row * dot_len..(row + 1) * dot_len];
        let b = &rhs[row * dot_len..(row + 1) * dot_len];
        acc.clear();
        let mut seq = 0f32;
        let mut refv = 0f64;
        for (&x, &y) in a.iter().zip(b) {
            acc.add_product(x, y);
            seq = x.mul_add(y, seq);
            refv += f64::from(x) * f64::from(y);
        }
        ntx.push(acc.round());
        fma.push(seq);
        reference.push(refv);
    }
    (rmse(&ntx, &reference), rmse(&fma, &reference))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_series_is_zero() {
        let c = [1.0f32, 2.0, 3.0];
        let r = [1.0f64, 2.0, 3.0];
        let s = rmse(&c, &r);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs_err, 0.0);
        assert_eq!(s.samples, 3);
    }

    #[test]
    fn rmse_known_value() {
        let c = [0.0f32, 0.0];
        let r = [3.0f64, 4.0];
        let s = rmse(&c, &r);
        // sqrt((9 + 16) / 2)
        assert!((s.rmse - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.max_abs_err, 4.0);
    }

    #[test]
    fn empty_series() {
        let s = rmse(&[], &[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.max_abs_err, 0.0);
    }

    #[test]
    fn ratio_guards_empty_input() {
        // A zero-length batch (either shape) must not assert.
        let (ntx, fma) = rmse_ratio_vs_fma(&[], &[], 0);
        assert_eq!(ntx, ErrorStats::default());
        assert_eq!(fma, ErrorStats::default());
        let (ntx, fma) = rmse_ratio_vs_fma(&[], &[], 8);
        assert_eq!(ntx.samples, 0);
        assert_eq!(fma.samples, 0);
    }

    #[test]
    #[should_panic(expected = "equally sized")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[]);
    }

    #[test]
    fn ntx_beats_sequential_fma_on_long_sums() {
        // Deterministic pseudo-random data: a long, mildly cancelling sum
        // where sequential rounding accumulates error but the wide
        // accumulator only rounds once.
        let mut state = 0x1234_5678u32;
        let mut next = move || {
            // xorshift32
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            (state as f32 / u32::MAX as f32) * 2.0 - 1.0
        };
        let n = 512 * 64;
        let lhs: Vec<f32> = (0..n).map(|_| next()).collect();
        let rhs: Vec<f32> = (0..n).map(|_| next()).collect();
        let (ntx, fma) = rmse_ratio_vs_fma(&lhs, &rhs, 512);
        assert!(
            ntx.rmse < fma.rmse,
            "wide accumulator must be at least as accurate: {} vs {}",
            ntx.rmse,
            fma.rmse
        );
    }
}
