//! Floating-point datapath of the NTX streaming co-processor.
//!
//! This crate models the FPU described in §II-C of the DATE 2019 paper
//! *"NTX: An Energy-efficient Streaming Accelerator for Floating-point
//! Generalized Reduction Workloads in 22 nm FD-SOI"*:
//!
//! * a fast FMAC unit built around a **Partial-Carry-Save (PCS) wide
//!   accumulator** that aggregates the exact 48-bit product of two
//!   IEEE 754 `f32` values at full fixed-point precision and defers
//!   rounding until the result is stored ([`WideAccumulator`]);
//! * a **comparator with index counter** used for min/max/argmin/argmax
//!   reductions ([`Comparator`]);
//! * an **ALU register** used as a scalar operand for scaling, threshold
//!   and memset-style commands ([`FpuDatapath`]).
//!
//! The hardware implements the accumulator as segmented partial
//! carry-save registers (~300 bit); this model uses a plain
//! two's-complement fixed-point window wide enough for the *entire*
//! `f32 × f32` product range, which is numerically equivalent up to the
//! single deferred rounding (a Kulisch accumulator).
//!
//! # Example
//!
//! ```
//! use ntx_fpu::WideAccumulator;
//!
//! let mut acc = WideAccumulator::new();
//! // Catastrophic cancellation that a plain f32 loop gets wrong:
//! acc.add_product(3.0e7, 3.0e7); // 9.0e14
//! acc.add_product(1.0, 1.0);
//! acc.add_product(-3.0e7, 3.0e7);
//! assert_eq!(acc.round(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comparator;
mod datapath;
mod float;
mod kulisch;
mod rmse;

pub use comparator::{Comparator, CompareMode};
pub use datapath::{FpuDatapath, FpuOp};
pub use float::{compose, decompose, ulp, Decomposed, FloatClass};
pub use kulisch::{AccuState, WideAccumulator, SPILL_BYTES, SPILL_WORDS};
pub use rmse::{rmse, rmse_ratio_vs_fma, ErrorStats};
