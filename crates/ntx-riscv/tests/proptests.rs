//! Property-based tests of the RV32IM core: random operands through
//! assembled programs, checked against Rust's integer semantics.

use ntx_riscv::{reg, Assembler, Cpu, Ram, Trap};
use proptest::prelude::*;

/// Assembles `build`, runs it, returns the CPU after `ebreak`.
fn run(build: impl FnOnce(&mut Assembler)) -> Cpu {
    let mut asm = Assembler::new(0);
    build(&mut asm);
    asm.ebreak();
    let mut ram = Ram::new(1 << 16);
    ram.load_words(0, &asm.assemble().expect("assembles"));
    let mut cpu = Cpu::new(0);
    let trap = cpu.run(&mut ram, 1_000_000);
    assert_eq!(trap, Some(Trap::Ebreak));
    cpu
}

proptest! {
    /// li materialises any 32-bit constant exactly.
    #[test]
    fn li_materialises_any_constant(v in any::<i32>()) {
        let cpu = run(|a| {
            a.li(reg::A0, v);
        });
        prop_assert_eq!(cpu.reg(reg::A0), v as u32);
    }

    /// ALU register-register semantics match Rust's wrapping integer
    /// operations.
    #[test]
    fn alu_matches_rust_semantics(x in any::<u32>(), y in any::<u32>()) {
        let cpu = run(|a| {
            a.li(reg::S0, x as i32);
            a.li(reg::S1, y as i32);
            a.add(reg::A0, reg::S0, reg::S1);
            a.sub(reg::A1, reg::S0, reg::S1);
            a.xor(reg::A2, reg::S0, reg::S1);
            a.or(reg::A3, reg::S0, reg::S1);
            a.and(reg::A4, reg::S0, reg::S1);
            a.sltu(reg::A5, reg::S0, reg::S1);
            a.slt(reg::A6, reg::S0, reg::S1);
            a.sll(reg::A7, reg::S0, reg::S1);
            a.srl(reg::T3, reg::S0, reg::S1);
            a.sra(reg::T4, reg::S0, reg::S1);
        });
        prop_assert_eq!(cpu.reg(reg::A0), x.wrapping_add(y));
        prop_assert_eq!(cpu.reg(reg::A1), x.wrapping_sub(y));
        prop_assert_eq!(cpu.reg(reg::A2), x ^ y);
        prop_assert_eq!(cpu.reg(reg::A3), x | y);
        prop_assert_eq!(cpu.reg(reg::A4), x & y);
        prop_assert_eq!(cpu.reg(reg::A5), u32::from(x < y));
        prop_assert_eq!(cpu.reg(reg::A6), u32::from((x as i32) < (y as i32)));
        prop_assert_eq!(cpu.reg(reg::A7), x.wrapping_shl(y & 31));
        prop_assert_eq!(cpu.reg(reg::T3), x.wrapping_shr(y & 31));
        prop_assert_eq!(cpu.reg(reg::T4), ((x as i32).wrapping_shr(y & 31)) as u32);
    }

    /// M-extension semantics incl. the division corner cases of the
    /// RISC-V spec.
    #[test]
    fn muldiv_matches_spec(x in any::<u32>(), y in any::<u32>()) {
        let cpu = run(|a| {
            a.li(reg::S0, x as i32);
            a.li(reg::S1, y as i32);
            a.mul(reg::A0, reg::S0, reg::S1);
            a.mulhu(reg::A1, reg::S0, reg::S1);
            a.mulh(reg::A2, reg::S0, reg::S1);
            a.div(reg::A3, reg::S0, reg::S1);
            a.divu(reg::A4, reg::S0, reg::S1);
            a.rem(reg::A5, reg::S0, reg::S1);
            a.remu(reg::A6, reg::S0, reg::S1);
        });
        prop_assert_eq!(cpu.reg(reg::A0), x.wrapping_mul(y));
        prop_assert_eq!(
            cpu.reg(reg::A1),
            ((u64::from(x) * u64::from(y)) >> 32) as u32
        );
        prop_assert_eq!(
            cpu.reg(reg::A2),
            ((i64::from(x as i32) * i64::from(y as i32)) >> 32) as u32
        );
        let (xs, ys) = (x as i32, y as i32);
        let expected_div = if y == 0 {
            u32::MAX
        } else if xs == i32::MIN && ys == -1 {
            x
        } else {
            xs.wrapping_div(ys) as u32
        };
        prop_assert_eq!(cpu.reg(reg::A3), expected_div);
        prop_assert_eq!(cpu.reg(reg::A4), if y == 0 { u32::MAX } else { x / y });
        let expected_rem = if y == 0 {
            x
        } else if xs == i32::MIN && ys == -1 {
            0
        } else {
            xs.wrapping_rem(ys) as u32
        };
        prop_assert_eq!(cpu.reg(reg::A5), expected_rem);
        prop_assert_eq!(cpu.reg(reg::A6), if y == 0 { x } else { x % y });
    }

    /// Memory roundtrip through lw/sw, lh/lhu, lb/lbu with sign
    /// extension.
    #[test]
    fn load_store_roundtrip(v in any::<u32>(), offset in (0u32..1000).prop_map(|o| o * 4)) {
        let base = 0x4000i32;
        let cpu = run(|a| {
            a.li(reg::S0, base + offset as i32);
            a.li(reg::T1, v as i32);
            a.sw(reg::T1, reg::S0, 0);
            a.lw(reg::A0, reg::S0, 0);
            a.lh(reg::A1, reg::S0, 0);
            a.lhu(reg::A2, reg::S0, 0);
            a.lb(reg::A3, reg::S0, 0);
            a.lbu(reg::A4, reg::S0, 0);
        });
        prop_assert_eq!(cpu.reg(reg::A0), v);
        prop_assert_eq!(cpu.reg(reg::A1), (v as u16) as i16 as i32 as u32);
        prop_assert_eq!(cpu.reg(reg::A2), u32::from(v as u16));
        prop_assert_eq!(cpu.reg(reg::A3), (v as u8) as i8 as i32 as u32);
        prop_assert_eq!(cpu.reg(reg::A4), u32::from(v as u8));
    }

    /// A counted loop executes exactly n iterations (branch + jump
    /// correctness for arbitrary trip counts).
    #[test]
    fn counted_loop_trip_count(n in 0u32..500) {
        let cpu = run(|a| {
            let head = a.new_label();
            let done = a.new_label();
            a.li(reg::T0, n as i32);
            a.li(reg::A0, 0);
            a.bind(head);
            a.beqz(reg::T0, done);
            a.addi(reg::A0, reg::A0, 1);
            a.addi(reg::T0, reg::T0, -1);
            a.jump(head);
            a.bind(done);
        });
        prop_assert_eq!(cpu.reg(reg::A0), n);
    }

    /// Compressed expansion: every legal 16-bit parcel expands to a
    /// decodable 32-bit instruction.
    #[test]
    fn compressed_expansion_is_decodable(parcel in any::<u16>()) {
        if parcel & 3 == 3 {
            // Not a compressed encoding.
            return Ok(());
        }
        if let Some(word) = ntx_riscv::expand_compressed(parcel) {
            prop_assert!(
                ntx_riscv::decode(word).is_some(),
                "expansion {word:#010x} of parcel {parcel:#06x} must decode"
            );
        }
    }
}
