//! Instruction decoding for RV32IMC.
//!
//! [`decode`] turns a 32-bit instruction word into the typed [`Instr`]
//! representation executed by the [`Cpu`](crate::Cpu);
//! [`expand_compressed`] maps every RV32C parcel onto its 32-bit
//! equivalent first, so the executor only deals with one form.

/// Integer register–register / register–immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`, register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed less-than set.
    Slt,
    /// Unsigned less-than set.
    Sltu,
    /// Exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Inclusive or.
    Or,
    /// Bitwise and.
    And,
}

/// M-extension multiply/divide operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Conditional branch comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`.
    Eq,
    /// `bne`.
    Ne,
    /// `blt` (signed).
    Lt,
    /// `bge` (signed).
    Ge,
    /// `bltu`.
    Ltu,
    /// `bgeu`.
    Geu,
}

/// Load widths/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb` — sign-extended byte.
    Lb,
    /// `lh` — sign-extended half.
    Lh,
    /// `lw` — word.
    Lw,
    /// `lbu` — zero-extended byte.
    Lbu,
    /// `lhu` — zero-extended half.
    Lhu,
}

/// Store widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`.
    Sb,
    /// `sh`.
    Sh,
    /// `sw`.
    Sw,
}

/// CSR access forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`/`csrrwi`.
    ReadWrite,
    /// `csrrs`/`csrrsi`.
    ReadSet,
    /// `csrrc`/`csrrci`.
    ReadClear,
}

/// One decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Instr {
    /// `lui rd, imm` (`imm` already aligned to bits 31:12).
    Lui {
        /// Destination register.
        rd: u8,
        /// Upper immediate, pre-shifted.
        imm: u32,
    },
    /// `auipc rd, imm`.
    Auipc {
        /// Destination register.
        rd: u8,
        /// Upper immediate, pre-shifted.
        imm: u32,
    },
    /// `jal rd, offset`.
    Jal {
        /// Link register.
        rd: u8,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`.
    Jalr {
        /// Link register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand register.
        rs1: u8,
        /// Right operand register.
        rs2: u8,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Memory load.
    Load {
        /// Width/signedness.
        op: LoadOp,
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Base register.
        rs1: u8,
        /// Source register.
        rs2: u8,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation.
    OpImm {
        /// Operation (no `Sub`; shifts take the shamt in `imm`).
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate (shamt for shifts).
        imm: i32,
    },
    /// Register–register ALU operation.
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Left source.
        rs1: u8,
        /// Right source.
        rs2: u8,
    },
    /// M-extension operation.
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Destination register.
        rd: u8,
        /// Left source.
        rs1: u8,
        /// Right source.
        rs2: u8,
    },
    /// `fence`/`fence.i` — a no-op in this single-hart model.
    Fence,
    /// `ecall`.
    Ecall,
    /// `ebreak`.
    Ebreak,
    /// CSR access.
    Csr {
        /// Access form.
        op: CsrOp,
        /// Destination register.
        rd: u8,
        /// Source register or zimm value.
        src: u8,
        /// CSR number.
        csr: u16,
        /// True for the immediate (`zimm`) forms.
        immediate: bool,
    },
}

#[inline]
fn bits(word: u32, hi: u32, lo: u32) -> u32 {
    (word >> lo) & ((1 << (hi - lo + 1)) - 1)
}

#[inline]
fn sext(value: u32, bits_: u32) -> i32 {
    let shift = 32 - bits_;
    ((value << shift) as i32) >> shift
}

/// Decodes a 32-bit instruction word. Returns `None` for encodings
/// outside RV32IM + Zicsr.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn decode(word: u32) -> Option<Instr> {
    let opcode = word & 0x7f;
    let rd = bits(word, 11, 7) as u8;
    let rs1 = bits(word, 19, 15) as u8;
    let rs2 = bits(word, 24, 20) as u8;
    let funct3 = bits(word, 14, 12);
    let funct7 = bits(word, 31, 25);
    Some(match opcode {
        0x37 => Instr::Lui {
            rd,
            imm: word & 0xffff_f000,
        },
        0x17 => Instr::Auipc {
            rd,
            imm: word & 0xffff_f000,
        },
        0x6f => {
            let imm = (bits(word, 31, 31) << 20)
                | (bits(word, 19, 12) << 12)
                | (bits(word, 20, 20) << 11)
                | (bits(word, 30, 21) << 1);
            Instr::Jal {
                rd,
                offset: sext(imm, 21),
            }
        }
        0x67 if funct3 == 0 => Instr::Jalr {
            rd,
            rs1,
            offset: sext(bits(word, 31, 20), 12),
        },
        0x63 => {
            let imm = (bits(word, 31, 31) << 12)
                | (bits(word, 7, 7) << 11)
                | (bits(word, 30, 25) << 5)
                | (bits(word, 11, 8) << 1);
            let op = match funct3 {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return None,
            };
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset: sext(imm, 13),
            }
        }
        0x03 => {
            let op = match funct3 {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                _ => return None,
            };
            Instr::Load {
                op,
                rd,
                rs1,
                offset: sext(bits(word, 31, 20), 12),
            }
        }
        0x23 => {
            let op = match funct3 {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                _ => return None,
            };
            let imm = (bits(word, 31, 25) << 5) | bits(word, 11, 7);
            Instr::Store {
                op,
                rs1,
                rs2,
                offset: sext(imm, 12),
            }
        }
        0x13 => {
            let imm = sext(bits(word, 31, 20), 12);
            let op = match funct3 {
                0 => AluOp::Add,
                1 if funct7 == 0 => AluOp::Sll,
                2 => AluOp::Slt,
                3 => AluOp::Sltu,
                4 => AluOp::Xor,
                5 if funct7 == 0 => AluOp::Srl,
                5 if funct7 == 0x20 => AluOp::Sra,
                6 => AluOp::Or,
                7 => AluOp::And,
                _ => return None,
            };
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => bits(word, 24, 20) as i32,
                _ => imm,
            };
            Instr::OpImm { op, rd, rs1, imm }
        }
        0x33 => {
            if funct7 == 1 {
                let op = match funct3 {
                    0 => MulDivOp::Mul,
                    1 => MulDivOp::Mulh,
                    2 => MulDivOp::Mulhsu,
                    3 => MulDivOp::Mulhu,
                    4 => MulDivOp::Div,
                    5 => MulDivOp::Divu,
                    6 => MulDivOp::Rem,
                    7 => MulDivOp::Remu,
                    _ => unreachable!(),
                };
                return Some(Instr::MulDiv { op, rd, rs1, rs2 });
            }
            let op = match (funct3, funct7) {
                (0, 0) => AluOp::Add,
                (0, 0x20) => AluOp::Sub,
                (1, 0) => AluOp::Sll,
                (2, 0) => AluOp::Slt,
                (3, 0) => AluOp::Sltu,
                (4, 0) => AluOp::Xor,
                (5, 0) => AluOp::Srl,
                (5, 0x20) => AluOp::Sra,
                (6, 0) => AluOp::Or,
                (7, 0) => AluOp::And,
                _ => return None,
            };
            Instr::Op { op, rd, rs1, rs2 }
        }
        0x0f => Instr::Fence,
        0x73 => {
            if funct3 == 0 {
                match bits(word, 31, 20) {
                    0 => Instr::Ecall,
                    1 => Instr::Ebreak,
                    _ => return None,
                }
            } else {
                let op = match funct3 & 3 {
                    1 => CsrOp::ReadWrite,
                    2 => CsrOp::ReadSet,
                    3 => CsrOp::ReadClear,
                    _ => return None,
                };
                Instr::Csr {
                    op,
                    rd,
                    src: rs1,
                    csr: bits(word, 31, 20) as u16,
                    immediate: funct3 >= 4,
                }
            }
        }
        _ => return None,
    })
}

/// Instruction-word encoders shared by the assembler and the compressed
/// expander.
pub(crate) mod encode {
    pub(crate) fn r_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, rs2: u8, funct7: u32) -> u32 {
        opcode
            | (u32::from(rd) << 7)
            | (funct3 << 12)
            | (u32::from(rs1) << 15)
            | (u32::from(rs2) << 20)
            | (funct7 << 25)
    }

    pub(crate) fn i_type(opcode: u32, rd: u8, funct3: u32, rs1: u8, imm: i32) -> u32 {
        opcode
            | (u32::from(rd) << 7)
            | (funct3 << 12)
            | (u32::from(rs1) << 15)
            | (((imm as u32) & 0xfff) << 20)
    }

    pub(crate) fn s_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
        let imm = imm as u32;
        opcode
            | ((imm & 0x1f) << 7)
            | (funct3 << 12)
            | (u32::from(rs1) << 15)
            | (u32::from(rs2) << 20)
            | (((imm >> 5) & 0x7f) << 25)
    }

    pub(crate) fn b_type(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
        let imm = imm as u32;
        opcode
            | (((imm >> 11) & 1) << 7)
            | (((imm >> 1) & 0xf) << 8)
            | (funct3 << 12)
            | (u32::from(rs1) << 15)
            | (u32::from(rs2) << 20)
            | (((imm >> 5) & 0x3f) << 25)
            | (((imm >> 12) & 1) << 31)
    }

    pub(crate) fn u_type(opcode: u32, rd: u8, imm: u32) -> u32 {
        opcode | (u32::from(rd) << 7) | (imm & 0xffff_f000)
    }

    pub(crate) fn j_type(opcode: u32, rd: u8, imm: i32) -> u32 {
        let imm = imm as u32;
        opcode
            | (u32::from(rd) << 7)
            | (((imm >> 12) & 0xff) << 12)
            | (((imm >> 11) & 1) << 20)
            | (((imm >> 1) & 0x3ff) << 21)
            | (((imm >> 20) & 1) << 31)
    }
}

/// Expands a 16-bit RV32C parcel into its 32-bit equivalent encoding.
/// Returns `None` for illegal/reserved parcels (including the all-zero
/// word, which is defined illegal).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn expand_compressed(parcel: u16) -> Option<u32> {
    use encode::*;
    let w = u32::from(parcel);
    if w == 0 {
        return None;
    }
    let op = w & 3;
    let funct3 = bits(w, 15, 13);
    let rd_full = bits(w, 11, 7) as u8;
    let rs2_full = bits(w, 6, 2) as u8;
    let rd_p = 8 + bits(w, 9, 7) as u8; // rs1'/rd' in compressed form
    let rs2_p = 8 + bits(w, 4, 2) as u8;
    match (op, funct3) {
        // --- Quadrant 0 ---
        (0, 0) => {
            // c.addi4spn -> addi rd', x2, nzuimm
            let uimm = (bits(w, 12, 11) << 4)
                | (bits(w, 10, 7) << 6)
                | (bits(w, 6, 6) << 2)
                | (bits(w, 5, 5) << 3);
            if uimm == 0 {
                return None;
            }
            Some(i_type(0x13, rs2_p, 0, 2, uimm as i32))
        }
        (0, 2) => {
            // c.lw -> lw rd', uimm(rs1')
            let uimm = (bits(w, 12, 10) << 3) | (bits(w, 6, 6) << 2) | (bits(w, 5, 5) << 6);
            Some(i_type(0x03, rs2_p, 2, rd_p, uimm as i32))
        }
        (0, 6) => {
            // c.sw -> sw rs2', uimm(rs1')
            let uimm = (bits(w, 12, 10) << 3) | (bits(w, 6, 6) << 2) | (bits(w, 5, 5) << 6);
            Some(s_type(0x23, 2, rd_p, rs2_p, uimm as i32))
        }
        // --- Quadrant 1 ---
        (1, 0) => {
            // c.nop / c.addi
            let imm = sext((bits(w, 12, 12) << 5) | bits(w, 6, 2), 6);
            Some(i_type(0x13, rd_full, 0, rd_full, imm))
        }
        (1, 1) => Some(j_type(0x6f, 1, cj_offset(w))), // c.jal (RV32)
        (1, 2) => {
            // c.li -> addi rd, x0, imm
            let imm = sext((bits(w, 12, 12) << 5) | bits(w, 6, 2), 6);
            Some(i_type(0x13, rd_full, 0, 0, imm))
        }
        (1, 3) => {
            if rd_full == 2 {
                // c.addi16sp
                let imm = sext(
                    (bits(w, 12, 12) << 9)
                        | (bits(w, 6, 6) << 4)
                        | (bits(w, 5, 5) << 6)
                        | (bits(w, 4, 3) << 7)
                        | (bits(w, 2, 2) << 5),
                    10,
                );
                if imm == 0 {
                    return None;
                }
                Some(i_type(0x13, 2, 0, 2, imm))
            } else {
                // c.lui
                let imm = sext((bits(w, 12, 12) << 5) | bits(w, 6, 2), 6);
                if imm == 0 || rd_full == 0 {
                    return None;
                }
                Some(u_type(0x37, rd_full, (imm as u32) << 12))
            }
        }
        (1, 4) => {
            let shamt = ((bits(w, 12, 12) << 5) | bits(w, 6, 2)) as i32;
            match bits(w, 11, 10) {
                0 => {
                    // c.srli (RV32 requires shamt[5] == 0)
                    if shamt >= 32 {
                        return None;
                    }
                    Some(i_type(0x13, rd_p, 5, rd_p, shamt))
                }
                1 => {
                    if shamt >= 32 {
                        return None;
                    }
                    // c.srai: srai encodes funct7 0x20 in imm[11:5]
                    Some(i_type(0x13, rd_p, 5, rd_p, shamt | 0x400))
                }
                2 => {
                    let imm = sext((bits(w, 12, 12) << 5) | bits(w, 6, 2), 6);
                    Some(i_type(0x13, rd_p, 7, rd_p, imm))
                }
                _ => {
                    if bits(w, 12, 12) != 0 {
                        return None; // reserved in RV32
                    }
                    let (funct3, funct7) = match bits(w, 6, 5) {
                        0 => (0, 0x20), // c.sub
                        1 => (4, 0),    // c.xor
                        2 => (6, 0),    // c.or
                        _ => (7, 0),    // c.and
                    };
                    Some(r_type(0x33, rd_p, funct3, rd_p, rs2_p, funct7))
                }
            }
        }
        (1, 5) => Some(j_type(0x6f, 0, cj_offset(w))), // c.j
        (1, 6) => Some(b_type(0x63, 0, rd_p, 0, cb_offset(w))), // c.beqz
        (1, 7) => Some(b_type(0x63, 1, rd_p, 0, cb_offset(w))), // c.bnez
        // --- Quadrant 2 ---
        (2, 0) => {
            let shamt = ((bits(w, 12, 12) << 5) | bits(w, 6, 2)) as i32;
            if shamt >= 32 {
                return None;
            }
            Some(i_type(0x13, rd_full, 1, rd_full, shamt))
        }
        (2, 2) => {
            // c.lwsp
            if rd_full == 0 {
                return None;
            }
            let uimm = (bits(w, 12, 12) << 5) | (bits(w, 6, 4) << 2) | (bits(w, 3, 2) << 6);
            Some(i_type(0x03, rd_full, 2, 2, uimm as i32))
        }
        (2, 4) => {
            let bit12 = bits(w, 12, 12) != 0;
            match (bit12, rd_full, rs2_full) {
                (false, 0, _) => None,
                (false, rs1, 0) => Some(i_type(0x67, 0, 0, rs1, 0)), // c.jr
                (false, rd, rs2) => Some(r_type(0x33, rd, 0, 0, rs2, 0)), // c.mv
                (true, 0, 0) => Some(i_type(0x73, 0, 0, 0, 1)),      // c.ebreak
                (true, rs1, 0) => Some(i_type(0x67, 1, 0, rs1, 0)),  // c.jalr
                (true, rd, rs2) => Some(r_type(0x33, rd, 0, rd, rs2, 0)), // c.add
            }
        }
        (2, 6) => {
            // c.swsp
            let uimm = (bits(w, 12, 9) << 2) | (bits(w, 8, 7) << 6);
            Some(s_type(0x23, 2, 2, rs2_full, uimm as i32))
        }
        _ => None,
    }
}

/// CJ-format offset (c.j / c.jal).
fn cj_offset(w: u32) -> i32 {
    let imm = (bits(w, 12, 12) << 11)
        | (bits(w, 11, 11) << 4)
        | (bits(w, 10, 9) << 8)
        | (bits(w, 8, 8) << 10)
        | (bits(w, 7, 7) << 6)
        | (bits(w, 6, 6) << 7)
        | (bits(w, 5, 3) << 1)
        | (bits(w, 2, 2) << 5);
    sext(imm, 12)
}

/// CB-format offset (c.beqz / c.bnez).
fn cb_offset(w: u32) -> i32 {
    let imm = (bits(w, 12, 12) << 8)
        | (bits(w, 11, 10) << 3)
        | (bits(w, 6, 5) << 6)
        | (bits(w, 4, 3) << 1)
        | (bits(w, 2, 2) << 5);
    sext(imm, 9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_addi() {
        // addi x5, x6, -1  => imm=0xfff rs1=6 funct3=0 rd=5 opcode=0x13
        let word = encode::i_type(0x13, 5, 0, 6, -1);
        assert_eq!(
            decode(word),
            Some(Instr::OpImm {
                op: AluOp::Add,
                rd: 5,
                rs1: 6,
                imm: -1
            })
        );
    }

    #[test]
    fn decode_lui_auipc() {
        assert_eq!(
            decode(encode::u_type(0x37, 3, 0xdead_b000)),
            Some(Instr::Lui {
                rd: 3,
                imm: 0xdead_b000
            })
        );
        assert_eq!(
            decode(encode::u_type(0x17, 4, 0x1000)),
            Some(Instr::Auipc { rd: 4, imm: 0x1000 })
        );
    }

    #[test]
    fn decode_branch_offsets() {
        for &off in &[-4096, -2, 0, 2, 4094] {
            let word = encode::b_type(0x63, 1, 1, 2, off);
            match decode(word) {
                Some(Instr::Branch {
                    op: BranchOp::Ne,
                    rs1: 1,
                    rs2: 2,
                    offset,
                }) => assert_eq!(offset, off, "branch offset {off}"),
                other => panic!("bad decode {other:?}"),
            }
        }
    }

    #[test]
    fn decode_jal_offsets() {
        for &off in &[-1_048_576, -2, 0, 2, 1_048_574] {
            let word = encode::j_type(0x6f, 1, off);
            match decode(word) {
                Some(Instr::Jal { rd: 1, offset }) => assert_eq!(offset, off),
                other => panic!("bad decode {other:?}"),
            }
        }
    }

    #[test]
    fn decode_store_offsets() {
        for &off in &[-2048, -1, 0, 1, 2047] {
            let word = encode::s_type(0x23, 2, 3, 4, off);
            match decode(word) {
                Some(Instr::Store {
                    op: StoreOp::Sw,
                    rs1: 3,
                    rs2: 4,
                    offset,
                }) => assert_eq!(offset, off),
                other => panic!("bad decode {other:?}"),
            }
        }
    }

    #[test]
    fn decode_muldiv() {
        let word = encode::r_type(0x33, 1, 4, 2, 3, 1);
        assert_eq!(
            decode(word),
            Some(Instr::MulDiv {
                op: MulDivOp::Div,
                rd: 1,
                rs1: 2,
                rs2: 3
            })
        );
    }

    #[test]
    fn decode_shift_immediates() {
        let srai = encode::i_type(0x13, 1, 5, 2, 7 | 0x400);
        assert_eq!(
            decode(srai),
            Some(Instr::OpImm {
                op: AluOp::Sra,
                rd: 1,
                rs1: 2,
                imm: 7
            })
        );
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode(0x0000_0073), Some(Instr::Ecall));
        assert_eq!(decode(0x0010_0073), Some(Instr::Ebreak));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(0xffff_ffff), None);
        assert_eq!(decode(0x0000_0000), None);
    }

    #[test]
    fn expand_c_addi() {
        // c.addi x8, -1 => 0x1 | (0<<13).. build: funct3=000 op=01,
        // rd=8, imm=-1 (imm[5]=1 bits 6:2 = 0b11111)
        let parcel: u16 = 0b000_1_01000_11111_01;
        let word = expand_compressed(parcel).expect("legal");
        assert_eq!(
            decode(word),
            Some(Instr::OpImm {
                op: AluOp::Add,
                rd: 8,
                rs1: 8,
                imm: -1
            })
        );
    }

    #[test]
    fn expand_c_li_c_mv_c_add() {
        // c.li x10, 17: funct3=010 op=01 rd=10 imm=17 (imm[5]=0,
        // imm[4:0]=17)
        let parcel: u16 = 0b010_0_01010_10001_01;
        let word = expand_compressed(parcel).unwrap();
        assert_eq!(
            decode(word),
            Some(Instr::OpImm {
                op: AluOp::Add,
                rd: 10,
                rs1: 0,
                imm: 17
            })
        );
        // c.mv x3, x4: quadrant 2 funct3=100, bit12=0, rd=3, rs2=4.
        let parcel: u16 = 0b100_0_00011_00100_10;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Op {
                op: AluOp::Add,
                rd: 3,
                rs1: 0,
                rs2: 4
            })
        );
        // c.add x3, x4: bit12=1.
        let parcel: u16 = 0b100_1_00011_00100_10;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Op {
                op: AluOp::Add,
                rd: 3,
                rs1: 3,
                rs2: 4
            })
        );
    }

    #[test]
    fn expand_c_lw_c_sw() {
        // c.lw x9, 4(x10): rd'=9 -> bits 4:2 = 001; rs1'=10 -> bits 9:7
        // = 010; uimm=4 -> imm[2]=1 (bit 6), imm[6]=0 (bit 5), imm[5:3]=0.
        let parcel: u16 = 0b010_000_010_1_0_001_00;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Load {
                op: LoadOp::Lw,
                rd: 9,
                rs1: 10,
                offset: 4
            })
        );
        let parcel: u16 = 0b110_000_010_1_0_001_00;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Store {
                op: StoreOp::Sw,
                rs1: 10,
                rs2: 9,
                offset: 4
            })
        );
    }

    #[test]
    fn expand_c_j_roundtrip() {
        // c.j with offset 2: parcel bit 3 carries offset[1].
        let parcel: u16 = (0b101 << 13) | (1 << 3) | 0b01;
        let word = expand_compressed(parcel).unwrap();
        match decode(word) {
            Some(Instr::Jal { rd: 0, offset }) => assert_eq!(offset, 2),
            other => panic!("bad expansion {other:?}"),
        }
    }

    #[test]
    fn expand_c_ebreak() {
        let parcel: u16 = 0b100_1_00000_00000_10;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Ebreak)
        );
    }

    #[test]
    fn expand_rejects_defined_illegal() {
        assert_eq!(expand_compressed(0), None);
        // c.addi4spn with zero immediate is reserved (nonzero rd').
        assert_eq!(expand_compressed(0b000_00000000_001_00), None);
    }

    #[test]
    fn expand_c_lwsp_swsp() {
        // c.lwsp x7, 8(sp): funct3=010 op=10 rd=7 uimm=8 -> imm[4:2]
        // bits 6:4 = 010.
        let parcel: u16 = 0b010_0_00111_01000_10;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Load {
                op: LoadOp::Lw,
                rd: 7,
                rs1: 2,
                offset: 8
            })
        );
        // c.swsp x7, 8(sp): funct3=110 op=10, uimm[5:2] at bits 12:9,
        // uimm[7:6] at bits 8:7.
        let parcel: u16 = 0b110_0010_00_00111_10;
        assert_eq!(
            decode(expand_compressed(parcel).unwrap()),
            Some(Instr::Store {
                op: StoreOp::Sw,
                rs1: 2,
                rs2: 7,
                offset: 8
            })
        );
    }
}
