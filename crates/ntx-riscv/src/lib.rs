//! RV32IMC control-core substrate.
//!
//! The NTX cluster pairs its co-processors with *"a small 32 bit RISC-V
//! processor core (RV32IMC)"* (§II-A, the RI5CY core of [18]) that
//! performs address calculation, programs the DMA, and offloads NTX
//! commands through memory-mapped registers (§II-E). This crate is a
//! from-scratch instruction-accurate interpreter of that core:
//!
//! * [`Cpu`] — RV32I base ISA, the M multiply/divide extension and the C
//!   compressed extension, with cycle/instret counters;
//! * [`Bus`] — the memory interface the cluster implements to map TCDM,
//!   NTX register windows, DMA registers and the L2 program memory;
//! * [`Assembler`] — a label-aware programmatic assembler used to write
//!   control programs in tests and examples without an external
//!   toolchain;
//! * [`Ram`] — a simple flat memory for stand-alone core tests.
//!
//! # Example
//!
//! ```
//! use ntx_riscv::{reg, Assembler, Cpu, Ram, Trap};
//!
//! // sum = 1 + 2 + ... + 10, then ebreak.
//! let mut asm = Assembler::new(0);
//! let done = asm.new_label();
//! let head = asm.new_label();
//! asm.li(reg::T0, 10);
//! asm.li(reg::T1, 0);
//! asm.bind(head);
//! asm.beq(reg::T0, reg::ZERO, done);
//! asm.add(reg::T1, reg::T1, reg::T0);
//! asm.addi(reg::T0, reg::T0, -1);
//! asm.jump(head);
//! asm.bind(done);
//! asm.ebreak();
//!
//! let mut ram = Ram::new(4096);
//! ram.load_words(0, &asm.assemble()?);
//! let mut cpu = Cpu::new(0);
//! let trap = cpu.run(&mut ram, 10_000);
//! assert_eq!(trap, Some(Trap::Ebreak));
//! assert_eq!(cpu.reg(reg::T1), 55);
//! # Ok::<(), ntx_riscv::AsmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod bus;
mod cpu;
mod instr;
pub mod reg;

pub use asm::{AsmError, Assembler, Label};
pub use bus::{AccessSize, Bus, BusError, Ram};
pub use cpu::{Cpu, Trap};
pub use instr::{decode, expand_compressed, Instr};
