//! The RV32IMC core executor.
//!
//! An instruction-accurate interpreter of the cluster's control core.
//! Timing is IPC = 1 (the RI5CY core of the paper is a 4-stage in-order
//! pipeline; the cluster simulator steps the core every second NTX cycle
//! to model its half-rate clock, §III-A).

use crate::bus::{AccessSize, Bus, BusError};
use crate::instr::{
    decode, expand_compressed, AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp,
};

/// Reasons execution stopped or faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// `ebreak` — the conventional "program finished" marker in this
    /// bare-metal environment.
    Ebreak,
    /// `ecall` — environment call (used for host services in tests).
    Ecall,
    /// Undecodable instruction word.
    IllegalInstruction {
        /// Faulting pc.
        pc: u32,
        /// Offending instruction word (expanded form for compressed).
        word: u32,
    },
    /// A data access faulted on the bus.
    BusFault {
        /// Faulting pc.
        pc: u32,
        /// Underlying bus error.
        error: BusError,
    },
    /// An instruction fetch faulted on the bus.
    FetchFault {
        /// Faulting pc.
        pc: u32,
        /// Underlying bus error.
        error: BusError,
    },
}

/// The RV32IMC hart.
///
/// # Example
///
/// ```
/// use ntx_riscv::{Cpu, Ram, reg};
///
/// let mut ram = Ram::new(64);
/// // addi x10, x0, 42 ; ebreak
/// ram.load_words(0, &[0x02a0_0513, 0x0010_0073]);
/// let mut cpu = Cpu::new(0);
/// cpu.run(&mut ram, 100);
/// assert_eq!(cpu.reg(reg::A0), 42);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    cycles: u64,
    instret: u64,
}

impl Cpu {
    /// Creates a hart with cleared registers starting at `pc`.
    #[must_use]
    pub fn new(pc: u32) -> Self {
        Self {
            regs: [0; 32],
            pc,
            cycles: 0,
            instret: 0,
        }
    }

    /// Reads register `x` (x0 always reads zero).
    #[must_use]
    pub fn reg(&self, x: u8) -> u32 {
        self.regs[(x & 31) as usize]
    }

    /// Writes register `x` (writes to x0 are discarded).
    pub fn set_reg(&mut self, x: u8, value: u32) {
        if x & 31 != 0 {
            self.regs[(x & 31) as usize] = value;
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (e.g. to restart a program).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Executed cycles (== retired instructions in this IPC-1 model).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Retired instruction count.
    #[must_use]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    fn csr_read(&self, csr: u16) -> u32 {
        match csr {
            0xc00 | 0xc01 => self.cycles as u32,         // cycle, time
            0xc80 | 0xc81 => (self.cycles >> 32) as u32, // cycleh, timeh
            0xc02 => self.instret as u32,                // instret
            0xc82 => (self.instret >> 32) as u32,        // instreth
            _ => 0,
        }
    }

    /// Executes one instruction. Returns `Ok(())` to continue or the
    /// trap that stopped the hart.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] raised by this instruction; the hart state is
    /// left at the faulting instruction (pc not advanced) for `ebreak` /
    /// `ecall` / faults, so callers can inspect or resume.
    #[allow(clippy::too_many_lines)]
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> Result<(), Trap> {
        let pc = self.pc;
        let lo = bus
            .fetch16(pc)
            .map_err(|error| Trap::FetchFault { pc, error })?;
        let (word, len) = if lo & 3 == 3 {
            let hi = bus
                .fetch16(pc.wrapping_add(2))
                .map_err(|error| Trap::FetchFault { pc, error })?;
            ((u32::from(hi) << 16) | u32::from(lo), 4)
        } else {
            let expanded = expand_compressed(lo).ok_or(Trap::IllegalInstruction {
                pc,
                word: u32::from(lo),
            })?;
            (expanded, 2)
        };
        let instr = decode(word).ok_or(Trap::IllegalInstruction { pc, word })?;
        let mut next_pc = pc.wrapping_add(len);
        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, imm),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, next_pc);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            Instr::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let (size, sign) = match op {
                    LoadOp::Lb => (AccessSize::Byte, true),
                    LoadOp::Lbu => (AccessSize::Byte, false),
                    LoadOp::Lh => (AccessSize::Half, true),
                    LoadOp::Lhu => (AccessSize::Half, false),
                    LoadOp::Lw => (AccessSize::Word, false),
                };
                let raw = bus
                    .read(addr, size)
                    .map_err(|error| Trap::BusFault { pc, error })?;
                let value = if sign {
                    match size {
                        AccessSize::Byte => raw as u8 as i8 as i32 as u32,
                        AccessSize::Half => raw as u16 as i16 as i32 as u32,
                        AccessSize::Word => raw,
                    }
                } else {
                    raw
                };
                self.set_reg(rd, value);
            }
            Instr::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let size = match op {
                    StoreOp::Sb => AccessSize::Byte,
                    StoreOp::Sh => AccessSize::Half,
                    StoreOp::Sw => AccessSize::Word,
                };
                bus.write(addr, size, self.reg(rs2))
                    .map_err(|error| Trap::BusFault { pc, error })?;
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = Self::alu(op, self.reg(rs1), imm as u32);
                self.set_reg(rd, v);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = Self::muldiv(op, a, b);
                self.set_reg(rd, v);
            }
            Instr::Fence => {}
            Instr::Ecall => return Err(Trap::Ecall),
            Instr::Ebreak => return Err(Trap::Ebreak),
            Instr::Csr {
                op,
                rd,
                src,
                csr,
                immediate,
            } => {
                let old = self.csr_read(csr);
                // Performance counters are read-only; set/clear/write
                // effects on them are dropped, matching RI5CY's
                // user-mode counter behaviour.
                let _ = (op, src, immediate);
                match op {
                    CsrOp::ReadWrite | CsrOp::ReadSet | CsrOp::ReadClear => {
                        self.set_reg(rd, old);
                    }
                }
            }
        }
        self.pc = next_pc;
        self.cycles += 1;
        self.instret += 1;
        Ok(())
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    fn muldiv(op: MulDivOp, a: u32, b: u32) -> u32 {
        match op {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
            MulDivOp::Mulhsu => ((i64::from(a as i32) * i64::from(b)) >> 32) as u32,
            MulDivOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
            MulDivOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a // overflow: MIN / -1 = MIN
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            MulDivOp::Divu => {
                if b == 0 {
                    u32::MAX
                } else {
                    a / b
                }
            }
            MulDivOp::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
            MulDivOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    /// Runs until a trap occurs or `max_steps` instructions retire.
    /// Returns the trap, or `None` if the step budget ran out.
    pub fn run<B: Bus>(&mut self, bus: &mut B, max_steps: u64) -> Option<Trap> {
        for _ in 0..max_steps {
            if let Err(trap) = self.step(bus) {
                return Some(trap);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::bus::Ram;
    use crate::reg;

    fn run_asm(build: impl FnOnce(&mut Assembler)) -> Cpu {
        let mut asm = Assembler::new(0);
        build(&mut asm);
        asm.ebreak();
        let mut ram = Ram::new(65_536);
        ram.load_words(0, &asm.assemble().expect("assembles"));
        let mut cpu = Cpu::new(0);
        let trap = cpu.run(&mut ram, 1_000_000);
        assert_eq!(trap, Some(Trap::Ebreak), "program must finish");
        cpu
    }

    #[test]
    fn arithmetic_basics() {
        let cpu = run_asm(|a| {
            a.li(reg::T0, 20);
            a.li(reg::T1, 22);
            a.add(reg::A0, reg::T0, reg::T1);
            a.sub(reg::A1, reg::T0, reg::T1);
            a.xor(reg::A2, reg::T0, reg::T1);
        });
        assert_eq!(cpu.reg(reg::A0), 42);
        assert_eq!(cpu.reg(reg::A1), (-2i32) as u32);
        assert_eq!(cpu.reg(reg::A2), 20 ^ 22);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let cpu = run_asm(|a| {
            a.li(reg::ZERO, 99);
            a.add(reg::A0, reg::ZERO, reg::ZERO);
        });
        assert_eq!(cpu.reg(reg::ZERO), 0);
        assert_eq!(cpu.reg(reg::A0), 0);
    }

    #[test]
    fn shifts_and_compares() {
        let cpu = run_asm(|a| {
            a.li(reg::T0, -8);
            a.srai(reg::A0, reg::T0, 1);
            a.srli(reg::A1, reg::T0, 28);
            a.slli(reg::A2, reg::T0, 1);
            a.slti(reg::A3, reg::T0, 0);
            a.sltiu(reg::A4, reg::T0, 0);
        });
        assert_eq!(cpu.reg(reg::A0) as i32, -4);
        assert_eq!(cpu.reg(reg::A1), 0xf);
        assert_eq!(cpu.reg(reg::A2) as i32, -16);
        assert_eq!(cpu.reg(reg::A3), 1);
        assert_eq!(cpu.reg(reg::A4), 0);
    }

    #[test]
    fn memory_loads_and_stores() {
        let cpu = run_asm(|a| {
            a.li(reg::T0, 0x1000);
            a.li(reg::T1, -2); // 0xfffffffe
            a.sw(reg::T1, reg::T0, 0);
            a.lw(reg::A0, reg::T0, 0);
            a.lb(reg::A1, reg::T0, 0);
            a.lbu(reg::A2, reg::T0, 0);
            a.lh(reg::A3, reg::T0, 0);
            a.lhu(reg::A4, reg::T0, 0);
            a.li(reg::T2, 0x55);
            a.sb(reg::T2, reg::T0, 1);
            a.lw(reg::A5, reg::T0, 0);
        });
        assert_eq!(cpu.reg(reg::A0), 0xffff_fffe);
        assert_eq!(cpu.reg(reg::A1), 0xffff_fffe);
        assert_eq!(cpu.reg(reg::A2), 0xfe);
        assert_eq!(cpu.reg(reg::A3), 0xffff_fffe);
        assert_eq!(cpu.reg(reg::A4), 0xfffe);
        assert_eq!(cpu.reg(reg::A5), 0xffff_55fe);
    }

    #[test]
    fn branches_and_loops() {
        // Computes 10! iteratively.
        let cpu = run_asm(|a| {
            let head = a.new_label();
            let done = a.new_label();
            a.li(reg::T0, 10);
            a.li(reg::A0, 1);
            a.bind(head);
            a.beq(reg::T0, reg::ZERO, done);
            a.mul(reg::A0, reg::A0, reg::T0);
            a.addi(reg::T0, reg::T0, -1);
            a.jump(head);
            a.bind(done);
        });
        assert_eq!(cpu.reg(reg::A0), 3_628_800);
    }

    #[test]
    fn jal_jalr_link() {
        let cpu = run_asm(|a| {
            let func = a.new_label();
            let over = a.new_label();
            a.call(func);
            a.jump(over);
            a.bind(func);
            a.li(reg::A0, 7);
            a.ret();
            a.bind(over);
        });
        assert_eq!(cpu.reg(reg::A0), 7);
    }

    #[test]
    fn muldiv_semantics() {
        let cpu = run_asm(|a| {
            a.li(reg::T0, -7);
            a.li(reg::T1, 2);
            a.div(reg::A0, reg::T0, reg::T1);
            a.rem(reg::A1, reg::T0, reg::T1);
            a.li(reg::T2, 0);
            a.div(reg::A2, reg::T0, reg::T2); // div by zero -> -1
            a.rem(reg::A3, reg::T0, reg::T2); // rem by zero -> dividend
            a.mulhu(reg::A4, reg::T0, reg::T0);
        });
        assert_eq!(cpu.reg(reg::A0) as i32, -3);
        assert_eq!(cpu.reg(reg::A1) as i32, -1);
        assert_eq!(cpu.reg(reg::A2), u32::MAX);
        assert_eq!(cpu.reg(reg::A3) as i32, -7);
        // (-7 as u32)^2 >> 32
        assert_eq!(
            cpu.reg(reg::A4),
            ((u64::from((-7i32) as u32) * u64::from((-7i32) as u32)) >> 32) as u32
        );
    }

    #[test]
    fn division_overflow_case() {
        let cpu = run_asm(|a| {
            a.li(reg::T0, i32::MIN);
            a.li(reg::T1, -1);
            a.div(reg::A0, reg::T0, reg::T1);
            a.rem(reg::A1, reg::T0, reg::T1);
        });
        assert_eq!(cpu.reg(reg::A0), 0x8000_0000);
        assert_eq!(cpu.reg(reg::A1), 0);
    }

    #[test]
    fn cycle_csr_counts() {
        let cpu = run_asm(|a| {
            a.csrr_cycle(reg::A0);
            a.nop();
            a.nop();
            a.csrr_cycle(reg::A1);
        });
        let delta = cpu.reg(reg::A1) - cpu.reg(reg::A0);
        assert_eq!(delta, 3); // csrr + 2 nops
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut ram = Ram::new(64);
        ram.load_words(0, &[0xffff_ffff]);
        let mut cpu = Cpu::new(0);
        assert!(matches!(
            cpu.run(&mut ram, 10),
            Some(Trap::IllegalInstruction { pc: 0, .. })
        ));
    }

    #[test]
    fn bus_fault_traps() {
        let mut ram = Ram::new(64);
        // lw a0, 0(t0) with t0 pointing far out of RAM.
        let mut asm = Assembler::new(0);
        asm.li(reg::T0, 0x10_0000);
        asm.lw(reg::A0, reg::T0, 0);
        ram.load_words(0, &asm.assemble().unwrap());
        let mut cpu = Cpu::new(0);
        assert!(matches!(cpu.run(&mut ram, 10), Some(Trap::BusFault { .. })));
    }

    #[test]
    fn ecall_stops() {
        let mut ram = Ram::new(64);
        ram.load_words(0, &[0x0000_0073]);
        let mut cpu = Cpu::new(0);
        assert_eq!(cpu.run(&mut ram, 10), Some(Trap::Ecall));
    }
}
