//! A label-aware programmatic assembler for RV32IM.
//!
//! Control programs for the cluster are short (configure NTX register
//! windows, program the DMA, poll status), so instead of shipping a text
//! assembler the crate exposes a typed builder: each method appends one
//! instruction, labels resolve forward and backward references, and
//! [`Assembler::assemble`] performs the fixups with range checking.
//!
//! All emitted instructions are 32-bit; the core still *executes*
//! compressed code (e.g. toolchain-produced binaries), it just is not
//! emitted here.

use crate::instr::encode::{b_type, i_type, j_type, r_type, s_type, u_type};
use std::error::Error;
use std::fmt;

/// A branch/jump target handle created by [`Assembler::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced at [`Assembler::assemble`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A referenced label was never bound.
    UnboundLabel {
        /// The label id.
        label: usize,
    },
    /// A label was bound twice.
    ReboundLabel {
        /// The label id.
        label: usize,
    },
    /// A conditional branch target is outside ±4 KiB.
    BranchOutOfRange {
        /// Byte offset that did not fit.
        offset: i64,
    },
    /// A `jal` target is outside ±1 MiB.
    JumpOutOfRange {
        /// Byte offset that did not fit.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label {label} was never bound"),
            AsmError::ReboundLabel { label } => write!(f, "label {label} bound twice"),
            AsmError::BranchOutOfRange { offset } => {
                write!(f, "branch offset {offset} exceeds the ±4 KiB range")
            }
            AsmError::JumpOutOfRange { offset } => {
                write!(f, "jump offset {offset} exceeds the ±1 MiB range")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    Branch { funct3: u32, rs1: u8, rs2: u8 },
    Jal { rd: u8 },
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    word_index: usize,
    label: Label,
    kind: FixupKind,
}

/// The instruction builder.
///
/// # Example
///
/// ```
/// use ntx_riscv::{reg, Assembler};
///
/// let mut asm = Assembler::new(0x1000);
/// asm.li(reg::A0, 123456);
/// asm.ebreak();
/// let words = asm.assemble()?;
/// assert_eq!(words.len(), 3); // lui + addi + ebreak
/// # Ok::<(), ntx_riscv::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    base: u32,
    words: Vec<u32>,
    labels: Vec<Option<u32>>,
    fixups: Vec<Fixup>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Starts a program at byte address `base`.
    #[must_use]
    pub fn new(base: u32) -> Self {
        Self {
            base,
            words: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
            error: None,
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        if self.labels[label.0].is_some() {
            self.error
                .get_or_insert(AsmError::ReboundLabel { label: label.0 });
            return;
        }
        self.labels[label.0] = Some(self.current_pc());
    }

    /// Byte address of the next emitted instruction.
    #[must_use]
    pub fn current_pc(&self) -> u32 {
        self.base + 4 * self.words.len() as u32
    }

    fn emit(&mut self, word: u32) -> &mut Self {
        self.words.push(word);
        self
    }

    // --- RV32I upper immediates and jumps ---

    /// `lui rd, imm20` (`imm` is the value for bits 31:12).
    pub fn lui(&mut self, rd: u8, imm: u32) -> &mut Self {
        self.emit(u_type(0x37, rd, imm << 12))
    }

    /// `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: u8, imm: u32) -> &mut Self {
        self.emit(u_type(0x17, rd, imm << 12))
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, target: Label) -> &mut Self {
        self.fixups.push(Fixup {
            word_index: self.words.len(),
            label: target,
            kind: FixupKind::Jal { rd },
        });
        self.emit(0)
    }

    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: u8, rs1: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x67, rd, 0, rs1, offset))
    }

    // --- branches ---

    fn branch(&mut self, funct3: u32, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.fixups.push(Fixup {
            word_index: self.words.len(),
            label: target,
            kind: FixupKind::Branch { funct3, rs1, rs2 },
        });
        self.emit(0)
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(0, rs1, rs2, target)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(1, rs1, rs2, target)
    }

    /// `blt rs1, rs2, label` (signed).
    pub fn blt(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(4, rs1, rs2, target)
    }

    /// `bge rs1, rs2, label` (signed).
    pub fn bge(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(5, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(6, rs1, rs2, target)
    }

    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.branch(7, rs1, rs2, target)
    }

    /// `beqz rs, label` (pseudo).
    pub fn beqz(&mut self, rs: u8, target: Label) -> &mut Self {
        self.beq(rs, 0, target)
    }

    /// `bnez rs, label` (pseudo).
    pub fn bnez(&mut self, rs: u8, target: Label) -> &mut Self {
        self.bne(rs, 0, target)
    }

    // --- loads/stores: rd/src first, then base register and offset ---

    /// `lb rd, offset(base)`.
    pub fn lb(&mut self, rd: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x03, rd, 0, base, offset))
    }

    /// `lh rd, offset(base)`.
    pub fn lh(&mut self, rd: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x03, rd, 1, base, offset))
    }

    /// `lw rd, offset(base)`.
    pub fn lw(&mut self, rd: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x03, rd, 2, base, offset))
    }

    /// `lbu rd, offset(base)`.
    pub fn lbu(&mut self, rd: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x03, rd, 4, base, offset))
    }

    /// `lhu rd, offset(base)`.
    pub fn lhu(&mut self, rd: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(i_type(0x03, rd, 5, base, offset))
    }

    /// `sb src, offset(base)`.
    pub fn sb(&mut self, src: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(s_type(0x23, 0, base, src, offset))
    }

    /// `sh src, offset(base)`.
    pub fn sh(&mut self, src: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(s_type(0x23, 1, base, src, offset))
    }

    /// `sw src, offset(base)`.
    pub fn sw(&mut self, src: u8, base: u8, offset: i32) -> &mut Self {
        self.emit(s_type(0x23, 2, base, src, offset))
    }

    // --- register-immediate ALU ---

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 0, rs1, imm))
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 2, rs1, imm))
    }

    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 3, rs1, imm))
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 4, rs1, imm))
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 6, rs1, imm))
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i32) -> &mut Self {
        self.emit(i_type(0x13, rd, 7, rs1, imm))
    }

    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: u8) -> &mut Self {
        self.emit(i_type(0x13, rd, 1, rs1, i32::from(shamt & 31)))
    }

    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: u8) -> &mut Self {
        self.emit(i_type(0x13, rd, 5, rs1, i32::from(shamt & 31)))
    }

    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: u8) -> &mut Self {
        self.emit(i_type(0x13, rd, 5, rs1, i32::from(shamt & 31) | 0x400))
    }

    // --- register-register ALU ---

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 0, rs1, rs2, 0))
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 0, rs1, rs2, 0x20))
    }

    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 1, rs1, rs2, 0))
    }

    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 2, rs1, rs2, 0))
    }

    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 3, rs1, rs2, 0))
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 4, rs1, rs2, 0))
    }

    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 5, rs1, rs2, 0))
    }

    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 5, rs1, rs2, 0x20))
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 6, rs1, rs2, 0))
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 7, rs1, rs2, 0))
    }

    // --- M extension ---

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 0, rs1, rs2, 1))
    }

    /// `mulh rd, rs1, rs2`.
    pub fn mulh(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 1, rs1, rs2, 1))
    }

    /// `mulhsu rd, rs1, rs2`.
    pub fn mulhsu(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 2, rs1, rs2, 1))
    }

    /// `mulhu rd, rs1, rs2`.
    pub fn mulhu(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 3, rs1, rs2, 1))
    }

    /// `div rd, rs1, rs2`.
    pub fn div(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 4, rs1, rs2, 1))
    }

    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 5, rs1, rs2, 1))
    }

    /// `rem rd, rs1, rs2`.
    pub fn rem(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 6, rs1, rs2, 1))
    }

    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) -> &mut Self {
        self.emit(r_type(0x33, rd, 7, rs1, rs2, 1))
    }

    // --- system ---

    /// `ebreak`.
    pub fn ebreak(&mut self) -> &mut Self {
        self.emit(i_type(0x73, 0, 0, 0, 1))
    }

    /// `ecall`.
    pub fn ecall(&mut self) -> &mut Self {
        self.emit(i_type(0x73, 0, 0, 0, 0))
    }

    /// `csrr rd, cycle` — read the cycle counter.
    pub fn csrr_cycle(&mut self, rd: u8) -> &mut Self {
        // csrrs rd, 0xc00, x0
        self.emit(i_type(0x73, rd, 2, 0, 0xc00u32 as i32))
    }

    // --- pseudo-instructions ---

    /// `nop` (`addi x0, x0, 0`).
    pub fn nop(&mut self) -> &mut Self {
        self.addi(0, 0, 0)
    }

    /// `mv rd, rs` (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: u8, rs: u8) -> &mut Self {
        self.addi(rd, rs, 0)
    }

    /// Loads a 32-bit constant (`addi`, or `lui`+`addi`).
    pub fn li(&mut self, rd: u8, imm: i32) -> &mut Self {
        if (-2048..2048).contains(&imm) {
            return self.addi(rd, 0, imm);
        }
        let uimm = imm as u32;
        let hi = uimm.wrapping_add(0x800) >> 12;
        let lo = uimm.wrapping_sub(hi << 12) as i32;
        self.lui(rd, hi);
        if lo != 0 {
            self.addi(rd, rd, lo);
        }
        self
    }

    /// Loads an absolute address (same expansion as [`Assembler::li`]).
    pub fn la(&mut self, rd: u8, addr: u32) -> &mut Self {
        self.li(rd, addr as i32)
    }

    /// Unconditional jump (`jal x0, label`).
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.jal(0, target)
    }

    /// Call (`jal ra, label`).
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.jal(1, target)
    }

    /// Return (`jalr x0, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.jalr(0, 1, 0)
    }

    /// Emits a raw instruction word (escape hatch).
    pub fn raw(&mut self, word: u32) -> &mut Self {
        self.emit(word)
    }

    /// Number of instructions emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Resolves labels and returns the finished instruction words.
    ///
    /// # Errors
    ///
    /// [`AsmError`] for unbound/rebound labels or out-of-range targets.
    pub fn assemble(&self) -> Result<Vec<u32>, AsmError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut words = self.words.clone();
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0].ok_or(AsmError::UnboundLabel {
                label: fixup.label.0,
            })?;
            let pc = self.base + 4 * fixup.word_index as u32;
            let offset = i64::from(target) - i64::from(pc);
            match fixup.kind {
                FixupKind::Branch { funct3, rs1, rs2 } => {
                    if !(-4096..4096).contains(&offset) {
                        return Err(AsmError::BranchOutOfRange { offset });
                    }
                    words[fixup.word_index] = b_type(0x63, funct3, rs1, rs2, offset as i32);
                }
                FixupKind::Jal { rd } => {
                    if !(-1_048_576..1_048_576).contains(&offset) {
                        return Err(AsmError::JumpOutOfRange { offset });
                    }
                    words[fixup.word_index] = j_type(0x6f, rd, offset as i32);
                }
            }
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{decode, BranchOp, Instr};
    use crate::reg;

    #[test]
    fn li_small_single_instruction() {
        let mut a = Assembler::new(0);
        a.li(reg::A0, -5);
        let w = a.assemble().unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(
            decode(w[0]),
            Some(Instr::OpImm {
                op: crate::instr::AluOp::Add,
                rd: reg::A0,
                rs1: 0,
                imm: -5
            })
        );
    }

    #[test]
    fn li_large_values_roundtrip() {
        // Execute the li expansion mentally: lui hi; addi lo.
        for &v in &[
            0x1234_5678i32,
            -1,
            i32::MIN,
            i32::MAX,
            0x7ff,
            0x800,
            -2049,
            0x0000_8000,
        ] {
            let mut a = Assembler::new(0);
            a.li(reg::T0, v);
            let w = a.assemble().unwrap();
            // Evaluate.
            let mut r = 0u32;
            for word in w {
                match decode(word).unwrap() {
                    Instr::Lui { imm, .. } => r = imm,
                    Instr::OpImm { imm, .. } => r = r.wrapping_add(imm as u32),
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(r, v as u32, "li {v}");
        }
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Assembler::new(0x100);
        let back = a.new_label();
        a.bind(back);
        a.nop();
        let fwd = a.new_label();
        a.beq(reg::T0, reg::T1, fwd);
        a.bne(reg::T0, reg::T1, back);
        a.bind(fwd);
        let w = a.assemble().unwrap();
        match decode(w[1]) {
            Some(Instr::Branch {
                op: BranchOp::Eq,
                offset,
                ..
            }) => assert_eq!(offset, 8), // to fwd, two instructions ahead
            other => panic!("{other:?}"),
        }
        match decode(w[2]) {
            Some(Instr::Branch {
                op: BranchOp::Ne,
                offset,
                ..
            }) => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.jump(l);
        assert!(matches!(
            a.assemble(),
            Err(AsmError::UnboundLabel { label: 0 })
        ));
    }

    #[test]
    fn rebound_label_is_an_error() {
        let mut a = Assembler::new(0);
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
        a.nop();
        assert!(matches!(
            a.assemble(),
            Err(AsmError::ReboundLabel { label: 0 })
        ));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut a = Assembler::new(0);
        let far = a.new_label();
        a.beq(reg::T0, reg::T1, far);
        for _ in 0..2000 {
            a.nop();
        }
        a.bind(far);
        assert!(matches!(
            a.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn pc_tracks_emission() {
        let mut a = Assembler::new(0x80);
        assert_eq!(a.current_pc(), 0x80);
        a.nop();
        a.nop();
        assert_eq!(a.current_pc(), 0x88);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
