//! The memory bus seen by the RISC-V core.
//!
//! The cluster implements [`Bus`] to route core accesses to the TCDM,
//! the NTX register windows (including the broadcast alias), the DMA
//! registers, and the L2 program memory. [`Ram`] is a flat test memory.

use std::error::Error;
use std::fmt;

/// Width of a single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 8-bit access (`lb`, `lbu`, `sb`).
    Byte,
    /// 16-bit access (`lh`, `lhu`, `sh`).
    Half,
    /// 32-bit access (`lw`, `sw`, instruction fetch).
    Word,
}

impl AccessSize {
    /// Number of bytes moved by the access.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// Errors a bus access can raise (they become traps in the core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No device is mapped at the address.
    Unmapped {
        /// The faulting address.
        addr: u32,
    },
    /// The device rejected the access (e.g. a malformed NTX register
    /// offset or an invalid committed configuration).
    Device {
        /// The faulting address.
        addr: u32,
    },
    /// The access violates the device's alignment requirement.
    Misaligned {
        /// The faulting address.
        addr: u32,
        /// The attempted size.
        size: u32,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unmapped { addr } => write!(f, "no device mapped at {addr:#010x}"),
            BusError::Device { addr } => write!(f, "device fault at {addr:#010x}"),
            BusError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
        }
    }
}

impl Error for BusError {}

/// Memory interface of the core: instruction fetches use
/// [`Bus::read`] with [`AccessSize::Word`] semantics (16-bit aligned
/// fetch for compressed instructions is composed from two halves).
pub trait Bus {
    /// Reads `size` bytes at `addr`, zero-extended into the low bits.
    ///
    /// # Errors
    ///
    /// Implementations return a [`BusError`] for unmapped or rejected
    /// accesses; the core converts it into a trap.
    fn read(&mut self, addr: u32, size: AccessSize) -> Result<u32, BusError>;

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Implementations return a [`BusError`] for unmapped or rejected
    /// accesses; the core converts it into a trap.
    fn write(&mut self, addr: u32, size: AccessSize, value: u32) -> Result<(), BusError>;

    /// Fetches an instruction parcel (16 bits) at `addr`. The default
    /// implementation reads through [`Bus::read`]; memories that keep
    /// code separately may override it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying read error.
    fn fetch16(&mut self, addr: u32) -> Result<u16, BusError> {
        Ok(self.read(addr, AccessSize::Half)? as u16)
    }
}

impl<B: Bus + ?Sized> Bus for &mut B {
    fn read(&mut self, addr: u32, size: AccessSize) -> Result<u32, BusError> {
        (**self).read(addr, size)
    }
    fn write(&mut self, addr: u32, size: AccessSize, value: u32) -> Result<(), BusError> {
        (**self).write(addr, size, value)
    }
    fn fetch16(&mut self, addr: u32) -> Result<u16, BusError> {
        (**self).fetch16(addr)
    }
}

/// Flat little-endian RAM for stand-alone core tests.
#[derive(Debug, Clone)]
pub struct Ram {
    data: Vec<u8>,
}

impl Ram {
    /// Allocates `bytes` of zeroed RAM at address 0.
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Self {
            data: vec![0; bytes],
        }
    }

    /// Loads 32-bit words starting at byte address `addr` (program
    /// loading).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the RAM size.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let a = addr as usize + 4 * i;
            self.data[a..a + 4].copy_from_slice(&w.to_le_bytes());
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the RAM has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Bus for Ram {
    fn read(&mut self, addr: u32, size: AccessSize) -> Result<u32, BusError> {
        let n = size.bytes() as usize;
        let a = addr as usize;
        if a + n > self.data.len() {
            return Err(BusError::Unmapped { addr });
        }
        let mut v = 0u32;
        for (i, &b) in self.data[a..a + n].iter().enumerate() {
            v |= u32::from(b) << (8 * i);
        }
        Ok(v)
    }

    fn write(&mut self, addr: u32, size: AccessSize, value: u32) -> Result<(), BusError> {
        let n = size.bytes() as usize;
        let a = addr as usize;
        if a + n > self.data.len() {
            return Err(BusError::Unmapped { addr });
        }
        for i in 0..n {
            self.data[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_roundtrip_all_sizes() {
        let mut ram = Ram::new(64);
        ram.write(0, AccessSize::Word, 0x0403_0201).unwrap();
        assert_eq!(ram.read(0, AccessSize::Word).unwrap(), 0x0403_0201);
        assert_eq!(ram.read(1, AccessSize::Byte).unwrap(), 0x02);
        assert_eq!(ram.read(2, AccessSize::Half).unwrap(), 0x0403);
        ram.write(2, AccessSize::Byte, 0xff).unwrap();
        assert_eq!(ram.read(0, AccessSize::Word).unwrap(), 0x04ff_0201);
    }

    #[test]
    fn out_of_range_is_unmapped() {
        let mut ram = Ram::new(8);
        assert!(matches!(
            ram.read(8, AccessSize::Byte),
            Err(BusError::Unmapped { addr: 8 })
        ));
        assert!(ram.write(6, AccessSize::Word, 0).is_err());
    }

    #[test]
    fn load_words_little_endian() {
        let mut ram = Ram::new(16);
        ram.load_words(4, &[0xdead_beef]);
        assert_eq!(ram.read(4, AccessSize::Byte).unwrap(), 0xef);
        assert_eq!(ram.read(7, AccessSize::Byte).unwrap(), 0xde);
    }

    #[test]
    fn fetch16_default_impl() {
        let mut ram = Ram::new(8);
        ram.load_words(0, &[0x1234_5678]);
        assert_eq!(ram.fetch16(0).unwrap(), 0x5678);
        assert_eq!(ram.fetch16(2).unwrap(), 0x1234);
    }
}
