//! ABI register names for RV32.
//!
//! Constants are plain `u8` register indices so they can be used
//! directly in [`Assembler`](crate::Assembler) calls and
//! [`Cpu::reg`](crate::Cpu::reg) lookups.

/// Hard-wired zero.
pub const ZERO: u8 = 0;
/// Return address.
pub const RA: u8 = 1;
/// Stack pointer.
pub const SP: u8 = 2;
/// Global pointer.
pub const GP: u8 = 3;
/// Thread pointer.
pub const TP: u8 = 4;
/// Temporary 0.
pub const T0: u8 = 5;
/// Temporary 1.
pub const T1: u8 = 6;
/// Temporary 2.
pub const T2: u8 = 7;
/// Saved register 0 / frame pointer.
pub const S0: u8 = 8;
/// Saved register 1.
pub const S1: u8 = 9;
/// Argument/return 0.
pub const A0: u8 = 10;
/// Argument/return 1.
pub const A1: u8 = 11;
/// Argument 2.
pub const A2: u8 = 12;
/// Argument 3.
pub const A3: u8 = 13;
/// Argument 4.
pub const A4: u8 = 14;
/// Argument 5.
pub const A5: u8 = 15;
/// Argument 6.
pub const A6: u8 = 16;
/// Argument 7.
pub const A7: u8 = 17;
/// Saved register 2.
pub const S2: u8 = 18;
/// Saved register 3.
pub const S3: u8 = 19;
/// Saved register 4.
pub const S4: u8 = 20;
/// Saved register 5.
pub const S5: u8 = 21;
/// Saved register 6.
pub const S6: u8 = 22;
/// Saved register 7.
pub const S7: u8 = 23;
/// Saved register 8.
pub const S8: u8 = 24;
/// Saved register 9.
pub const S9: u8 = 25;
/// Saved register 10.
pub const S10: u8 = 26;
/// Saved register 11.
pub const S11: u8 = 27;
/// Temporary 3.
pub const T3: u8 = 28;
/// Temporary 4.
pub const T4: u8 = 29;
/// Temporary 5.
pub const T5: u8 = 30;
/// Temporary 6.
pub const T6: u8 = 31;

/// The conventional ABI name of register `x`.
#[must_use]
pub fn name(x: u8) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    NAMES[(x & 31) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_indices() {
        assert_eq!(name(ZERO), "zero");
        assert_eq!(name(SP), "sp");
        assert_eq!(name(A0), "a0");
        assert_eq!(name(T6), "t6");
    }
}
