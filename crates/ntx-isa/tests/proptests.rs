//! Property-based tests of the ISA descriptors.
//!
//! Oracles: a plain-Rust nested-loop interpreter for the hardware-loop
//! cascade and AGU address streams, and the register-file image for
//! configuration roundtrips.

use ntx_isa::{
    AccuInit, Agu, AguConfig, Command, LoopCounters, LoopNest, NtxConfig, OperandSelect, RegFile,
    MAX_LOOPS,
};
use proptest::prelude::*;

fn arb_command() -> impl Strategy<Value = Command> {
    prop_oneof![
        any::<bool>().prop_map(|r| Command::Mac {
            operand: if r {
                OperandSelect::Register
            } else {
                OperandSelect::Memory
            }
        }),
        any::<bool>().prop_map(|r| Command::Add {
            operand: if r {
                OperandSelect::Register
            } else {
                OperandSelect::Memory
            }
        }),
        Just(Command::Min),
        Just(Command::Max),
        Just(Command::ArgMin),
        Just(Command::ArgMax),
        Just(Command::Relu),
        Just(Command::ThresholdMask),
        Just(Command::Copy),
        Just(Command::Set),
    ]
}

fn arb_loops() -> impl Strategy<Value = LoopNest> {
    (1usize..=MAX_LOOPS)
        .prop_flat_map(|depth| {
            (
                prop::collection::vec(1u32..6, depth),
                0usize..=depth,
                1usize..=depth,
            )
        })
        .prop_map(|(counts, store, init)| {
            LoopNest::nested(&counts).with_levels(init.min(counts.len()), store)
        })
}

fn arb_agu() -> impl Strategy<Value = AguConfig> {
    (
        (0u32..1024).prop_map(|w| w * 4),
        prop::array::uniform5((-64i32..64).prop_map(|s| s * 4)),
    )
        .prop_map(|(base, strides)| AguConfig::new(base, strides))
}

proptest! {
    /// Loop counters visit exactly the same index sequence as a plain
    /// nested-loop reference.
    #[test]
    fn counters_match_reference_walk(nest in arb_loops()) {
        let mut counters = LoopCounters::new(nest);
        let mut visited = Vec::new();
        loop {
            visited.push(counters.counters());
            if counters.advance().is_none() {
                break;
            }
        }
        // Reference: odometer increment, innermost first.
        let bounds = nest.bounds();
        let outer = nest.outer_level();
        let mut reference = Vec::new();
        let mut idx = [0u32; MAX_LOOPS];
        'outer: loop {
            reference.push(idx);
            for l in 0..outer {
                idx[l] += 1;
                if idx[l] < bounds[l] {
                    continue 'outer;
                }
                idx[l] = 0;
            }
            break;
        }
        prop_assert_eq!(visited, reference);
    }

    /// The AGU address stream equals the affine reference: the address
    /// at each step is base plus the sum of the strides selected by
    /// every preceding advance.
    #[test]
    fn agu_stream_matches_affine_reference(nest in arb_loops(), agu_cfg in arb_agu()) {
        let mut counters = LoopCounters::new(nest);
        let mut agu = Agu::new(agu_cfg);
        let mut expected = i64::from(agu_cfg.base);
        loop {
            prop_assert_eq!(agu.address(), expected as u32);
            match counters.advance() {
                Some(level) => {
                    agu.advance(level);
                    expected += i64::from(agu_cfg.strides[level]);
                    expected &= 0xffff_ffff;
                }
                None => break,
            }
        }
    }

    /// Store/init event counts factor the total iteration count.
    #[test]
    fn event_counts_divide_total(nest in arb_loops()) {
        let total = nest.total_iterations();
        if nest.store_level() > 0 {
            prop_assert_eq!(total % nest.store_events(), 0);
        }
        prop_assert_eq!(total % nest.init_events(), 0);
    }

    /// Any valid configuration survives the register-file roundtrip
    /// bit-exactly.
    #[test]
    fn regfile_roundtrip(
        command in arb_command(),
        loops in arb_loops(),
        agus in prop::array::uniform3(arb_agu()),
        memory_init in any::<bool>(),
        register_bits in any::<u32>(),
    ) {
        let mut builder = NtxConfig::builder();
        builder
            .command(command)
            .loops(loops)
            .accu_init(if memory_init { AccuInit::Memory } else { AccuInit::Zero })
            .register(f32::from_bits(register_bits));
        for (i, a) in agus.iter().enumerate() {
            builder.agu(i, *a);
        }
        let Ok(cfg) = builder.build() else {
            // Reductions with store level 0 are correctly rejected.
            prop_assert!(command.is_reduction() && loops.store_level() == 0);
            return Ok(());
        };
        let mut rf = RegFile::new();
        rf.load_config(&cfg);
        let decoded = rf.staged_config().expect("image of a valid config decodes");
        // Compare everything except NaN registers bit-wise.
        prop_assert_eq!(decoded.command, cfg.command);
        prop_assert_eq!(decoded.loops, cfg.loops);
        prop_assert_eq!(decoded.agus, cfg.agus);
        prop_assert_eq!(decoded.accu_init, cfg.accu_init);
        prop_assert_eq!(decoded.register.to_bits(), cfg.register.to_bits());
    }

    /// Access accounting: total reads/writes scale with iterations.
    #[test]
    fn access_accounting_is_consistent(loops in arb_loops()) {
        let cfg = NtxConfig::builder()
            .command(Command::Mac { operand: OperandSelect::Memory })
            .loops(if loops.store_level() == 0 {
                loops.with_levels(loops.init_level(), 1)
            } else {
                loops
            })
            .build()
            .expect("valid");
        let total = cfg.loops.total_iterations();
        prop_assert_eq!(cfg.total_flops(), 2 * total);
        prop_assert_eq!(cfg.total_reads(), 2 * total);
        prop_assert_eq!(cfg.total_writes(), cfg.loops.store_events());
    }
}
