//! Instruction-set architecture of the NTX streaming co-processor.
//!
//! This crate defines everything a program needs to *describe* work for
//! NTX, independent of the cycle simulator that executes it:
//!
//! * the [`Command`] set (§II-C and Fig. 3b of the paper): FMAC-based
//!   reductions, element-wise vector arithmetic, min/max with argmin /
//!   argmax via the index counter, ReLU, threshold/mask, memcpy/memset;
//! * the [`LoopNest`] descriptor for the five cascaded 16-bit hardware
//!   loops with programmable *init* and *store* levels (§II-D, Fig. 3a);
//! * the [`AguConfig`] address generators: three 32-bit pointers, each
//!   with five programmable strides selected by the outermost loop that
//!   advanced in a cycle (§II-D);
//! * the [`NtxConfig`] bundle with a validating [`NtxConfigBuilder`];
//! * the memory-mapped [`RegFile`] layout used by the RISC-V core to
//!   offload commands, including the double-buffered commit-on-command
//!   write semantics (§II-E).
//!
//! # Example: describing a GEMV row reduction
//!
//! ```
//! use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
//!
//! let rows = 8u32;
//! let cols = 16u32;
//! let cfg = NtxConfig::builder()
//!     .command(Command::Mac { operand: OperandSelect::Memory })
//!     // loop0 = columns (dot product), loop1 = rows.
//!     .loops(LoopNest::nested(&[cols, rows]).with_levels(1, 1))
//!     // A is row-major: advance 4 bytes per column, wraps naturally.
//!     .agu(0, AguConfig::stream(0x0000, 4))
//!     // x is re-read every row: advance 4 per column, rewind per row.
//!     .agu(1, AguConfig::new(0x1000, [4, -((cols as i32 - 1) * 4), 0, 0, 0]))
//!     // y takes one store per row.
//!     .agu(2, AguConfig::new(0x2000, [0, 4, 0, 0, 0]))
//!     .build()?;
//! assert_eq!(cfg.loops.total_iterations(), (rows * cols) as u64);
//! # Ok::<(), ntx_isa::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agu;
mod command;
mod config;
mod error;
mod loops;
mod regfile;

pub use agu::{Agu, AguConfig};
pub use command::{AccuInit, Command, OperandSelect, StoreSource};
pub use config::{NtxConfig, NtxConfigBuilder};
pub use error::ConfigError;
pub use loops::{LoopCounters, LoopNest, MAX_LOOPS};
pub use regfile::{RegFile, RegOffset, WriteEffect, NTX_REGFILE_BYTES};

// The wide-accumulator spill image is part of the ISA contract (the
// footprint of `AccuInit::Wide` restores and `wide_store` stores), so
// its dimensions are re-exported here for lowering code.
pub use ntx_fpu::{SPILL_BYTES, SPILL_WORDS};
