//! Validation errors for NTX configurations.

use std::error::Error;
use std::fmt;

/// Reasons an [`NtxConfig`](crate::NtxConfig) or a raw register-file image
/// fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A loop bound exceeds the 16-bit hardware counter (max 65 535).
    LoopBoundTooLarge {
        /// Loop level, 0 = innermost.
        level: usize,
        /// The offending bound.
        bound: u32,
    },
    /// An enabled loop has a zero iteration count.
    ZeroLoopBound {
        /// Loop level, 0 = innermost.
        level: usize,
    },
    /// `outer_level` is outside `1..=5`.
    InvalidOuterLevel {
        /// The offending value.
        outer: usize,
    },
    /// `init_level` or `store_level` exceeds `outer_level`.
    LevelOutOfRange {
        /// `"init"` or `"store"`.
        which: &'static str,
        /// The offending level.
        level: usize,
        /// The configured `outer_level`.
        outer: usize,
    },
    /// A reduction command requires `store_level >= 1`.
    ReductionStoresEveryCycle,
    /// An address-generator base address is not 4-byte aligned.
    UnalignedBase {
        /// AGU index (0..3).
        agu: usize,
        /// The offending base address.
        base: u32,
    },
    /// An address-generator stride is not a multiple of 4 bytes.
    UnalignedStride {
        /// AGU index (0..3).
        agu: usize,
        /// Stride slot (loop level).
        slot: usize,
        /// The offending stride.
        stride: i32,
    },
    /// Wide accumulator spill/restore (`AccuInit::Wide` or
    /// `wide_store`) was configured on a command that has no wide
    /// accumulator to spill — only reduction commands through the FMAC
    /// path ([`Command::Mac`](crate::Command::Mac)) carry one.
    WideAccuOnNonMac,
    /// The command register holds an encoding that maps to no command.
    UnknownCommandEncoding {
        /// The offending raw word.
        raw: u32,
    },
    /// A register-file access was outside the NTX register window.
    RegisterOffsetOutOfRange {
        /// The offending byte offset.
        offset: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LoopBoundTooLarge { level, bound } => write!(
                f,
                "loop {level} bound {bound} exceeds the 16-bit hardware counter"
            ),
            ConfigError::ZeroLoopBound { level } => {
                write!(f, "enabled loop {level} has a zero iteration count")
            }
            ConfigError::InvalidOuterLevel { outer } => {
                write!(f, "outer level {outer} is outside 1..=5")
            }
            ConfigError::LevelOutOfRange {
                which,
                level,
                outer,
            } => write!(f, "{which} level {level} exceeds the outer level {outer}"),
            ConfigError::ReductionStoresEveryCycle => {
                write!(f, "reduction commands require a store level of at least 1")
            }
            ConfigError::UnalignedBase { agu, base } => {
                write!(f, "AGU {agu} base address {base:#x} is not 4-byte aligned")
            }
            ConfigError::UnalignedStride { agu, slot, stride } => write!(
                f,
                "AGU {agu} stride {slot} ({stride}) is not a multiple of 4 bytes"
            ),
            ConfigError::WideAccuOnNonMac => write!(
                f,
                "wide accumulator spill/restore requires a MAC reduction command"
            ),
            ConfigError::UnknownCommandEncoding { raw } => {
                write!(f, "command word {raw:#010x} maps to no NTX command")
            }
            ConfigError::RegisterOffsetOutOfRange { offset } => {
                write!(f, "register offset {offset:#x} is outside the NTX window")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_without_period() {
        let samples: Vec<ConfigError> = vec![
            ConfigError::LoopBoundTooLarge {
                level: 1,
                bound: 70_000,
            },
            ConfigError::ZeroLoopBound { level: 0 },
            ConfigError::InvalidOuterLevel { outer: 9 },
            ConfigError::ReductionStoresEveryCycle,
            ConfigError::UnknownCommandEncoding { raw: 0xdead_beef },
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.ends_with('.'), "no trailing period: {msg}");
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ConfigError>();
    }
}
