//! Address Generation Units (§II-D).
//!
//! Each of the three AGUs holds a 32-bit byte address and five signed
//! strides. After every innermost iteration the address advances by
//! `strides[j]`, where `j` is the outermost loop level whose counter
//! incremented in that cycle (reported by
//! [`LoopCounters::advance`](crate::LoopCounters::advance)). Stride slots
//! of disabled loop levels are never selected.

use crate::error::ConfigError;
use crate::loops::MAX_LOOPS;

/// Static configuration of one AGU: base address plus per-level strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AguConfig {
    /// Starting byte address.
    pub base: u32,
    /// Stride (bytes) applied when loop level `j` is the outermost loop
    /// advancing in a cycle.
    pub strides: [i32; MAX_LOOPS],
}

impl AguConfig {
    /// Creates a configuration from a base address and explicit strides.
    #[must_use]
    pub fn new(base: u32, strides: [i32; MAX_LOOPS]) -> Self {
        Self { base, strides }
    }

    /// A linear stream: the same `step` regardless of which loop wrapped
    /// (e.g. walking a contiguous tensor in storage order).
    #[must_use]
    pub fn stream(base: u32, step: i32) -> Self {
        Self {
            base,
            strides: [step; MAX_LOOPS],
        }
    }

    /// A fixed pointer that never moves (single store destination, or a
    /// scalar re-read every iteration).
    #[must_use]
    pub fn fixed(base: u32) -> Self {
        Self {
            base,
            strides: [0; MAX_LOOPS],
        }
    }

    /// Validates 4-byte alignment of the base and all strides.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnalignedBase`] / [`ConfigError::UnalignedStride`].
    pub fn validate(&self, agu_index: usize) -> Result<(), ConfigError> {
        if !self.base.is_multiple_of(4) {
            return Err(ConfigError::UnalignedBase {
                agu: agu_index,
                base: self.base,
            });
        }
        for (slot, &s) in self.strides.iter().enumerate() {
            if s % 4 != 0 {
                return Err(ConfigError::UnalignedStride {
                    agu: agu_index,
                    slot,
                    stride: s,
                });
            }
        }
        Ok(())
    }
}

/// Dynamic state of one AGU during command execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Agu {
    config: AguConfig,
    address: u32,
}

impl Agu {
    /// Loads the configuration and resets the pointer to the base.
    #[must_use]
    pub fn new(config: AguConfig) -> Self {
        Self {
            config,
            address: config.base,
        }
    }

    /// The current byte address.
    #[must_use]
    pub fn address(&self) -> u32 {
        self.address
    }

    /// The configured stride of loop `level` in bytes.
    #[must_use]
    pub fn stride(&self, level: usize) -> i32 {
        self.config.strides[level]
    }

    /// Advances the pointer for a cycle in which loop `level` was the
    /// outermost loop to increment (wrapping 32-bit arithmetic, like the
    /// hardware adder).
    pub fn advance(&mut self, level: usize) {
        let stride = self.config.strides[level];
        self.address = self.address.wrapping_add(stride as u32);
    }

    /// Advances the pointer by `n` iterations that all select loop
    /// `level` — exactly `n` calls to [`Agu::advance`] folded into one
    /// wrapping multiply-add (the simulator's burst fast path).
    pub fn advance_by(&mut self, level: usize, n: u32) {
        let stride = self.config.strides[level];
        self.address = self
            .address
            .wrapping_add(stride.wrapping_mul(n as i32) as u32);
    }

    /// Restarts the pointer at the base address (new command).
    pub fn reset(&mut self) {
        self.address = self.config.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::{LoopCounters, LoopNest};

    #[test]
    fn stream_walks_linearly() {
        let mut agu = Agu::new(AguConfig::stream(0x100, 4));
        assert_eq!(agu.address(), 0x100);
        agu.advance(0);
        agu.advance(3);
        assert_eq!(agu.address(), 0x108);
    }

    #[test]
    fn fixed_never_moves() {
        let mut agu = Agu::new(AguConfig::fixed(0x40));
        for level in 0..MAX_LOOPS {
            agu.advance(level);
        }
        assert_eq!(agu.address(), 0x40);
    }

    #[test]
    fn negative_stride_rewinds() {
        let mut agu = Agu::new(AguConfig::new(0x20, [4, -8, 0, 0, 0]));
        agu.advance(0);
        agu.advance(0);
        assert_eq!(agu.address(), 0x28);
        agu.advance(1);
        assert_eq!(agu.address(), 0x20);
    }

    #[test]
    fn wrapping_arithmetic() {
        let mut agu = Agu::new(AguConfig::new(0xffff_fffc, [4, 0, 0, 0, 0]));
        agu.advance(0);
        assert_eq!(agu.address(), 0);
    }

    #[test]
    fn validate_alignment() {
        assert!(AguConfig::stream(0x101, 4).validate(0).is_err());
        assert!(AguConfig::new(0x100, [2, 0, 0, 0, 0]).validate(1).is_err());
        assert!(AguConfig::stream(0x100, 4).validate(2).is_ok());
    }

    /// The canonical §II-D pattern: AGU strides + loop cascade walk a 2-D
    /// row-major matrix with a row gap.
    #[test]
    fn two_d_walk_matches_reference() {
        let cols = 3u32;
        let row_pitch = 5 * 4; // matrix embedded in a wider buffer
        let nest = LoopNest::nested(&[cols, 2]);
        // After the last column of a row, jump to the next row start:
        // stride at level 1 = row_pitch - (cols-1)*4.
        let cfg = AguConfig::new(0, [4, row_pitch - (cols as i32 - 1) * 4, 0, 0, 0]);
        let mut agu = Agu::new(cfg);
        let mut counters = LoopCounters::new(nest);
        let mut addrs = Vec::new();
        loop {
            addrs.push(agu.address());
            match counters.advance() {
                Some(level) => agu.advance(level),
                None => break,
            }
        }
        assert_eq!(addrs, vec![0, 4, 8, 20, 24, 28]);
    }

    #[test]
    fn bulk_advance_matches_stepped_advance() {
        let cfg = AguConfig::new(0xffff_ff00, [12, -8, 0, 0, 0]);
        let mut stepped = Agu::new(cfg);
        let mut bulk = Agu::new(cfg);
        for _ in 0..100 {
            stepped.advance(0); // wraps through 0 on the way
        }
        bulk.advance_by(0, 100);
        assert_eq!(bulk.address(), stepped.address());
        assert_eq!(bulk.stride(0), 12);
        assert_eq!(bulk.stride(1), -8);
    }

    #[test]
    fn reset_returns_to_base() {
        let mut agu = Agu::new(AguConfig::stream(0x10, 4));
        agu.advance(0);
        agu.reset();
        assert_eq!(agu.address(), 0x10);
    }
}
