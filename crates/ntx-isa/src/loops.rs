//! The five cascaded hardware loops (§II-D).
//!
//! Each loop maintains a 16-bit counter with a programmable iteration
//! count. Counters cascade: when a counter wraps from its maximum back to
//! zero it increments the next-outer loop — exactly a software loop nest,
//! but advancing one innermost iteration per clock cycle.
//!
//! [`LoopNest`] is the static description (bounds, enabled depth, init
//! and store levels); [`LoopCounters`] is the dynamic state stepped by
//! the execution engine.

use crate::error::ConfigError;

/// Number of hardware loops in NTX.
pub const MAX_LOOPS: usize = 5;

/// Static description of the loop nest offloaded to NTX (Fig. 3a).
///
/// * `bounds[l]` is the iteration count of loop `l` (0 = innermost).
/// * `outer` enables loops `0..outer`.
/// * `init_level = k` re-initialises the accumulator every time loops
///   `0..k` are about to start a fresh pass (i.e. once per iteration of
///   loop `k`); `init_level = outer` initialises exactly once.
/// * `store_level = k` writes the reduction result after every complete
///   pass of loops `0..k`; `store_level = 0` means an element-wise store
///   on every innermost cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopNest {
    bounds: [u32; MAX_LOOPS],
    outer: usize,
    init_level: usize,
    store_level: usize,
}

impl LoopNest {
    /// Describes a flat vector of `n` elements: one loop, init before and
    /// store after the full reduction.
    #[must_use]
    pub fn vector(n: u32) -> Self {
        Self {
            bounds: [n, 1, 1, 1, 1],
            outer: 1,
            init_level: 1,
            store_level: 1,
        }
    }

    /// Describes an element-wise pass over `n` elements (store every
    /// cycle).
    #[must_use]
    pub fn elementwise(n: u32) -> Self {
        Self {
            bounds: [n, 1, 1, 1, 1],
            outer: 1,
            init_level: 1,
            store_level: 0,
        }
    }

    /// Builds a nest from iteration counts, innermost first. Up to
    /// [`MAX_LOOPS`] entries. Defaults to init/store at the innermost
    /// reduction boundary (`level 1`).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or longer than [`MAX_LOOPS`]; bound
    /// *values* are validated by [`NtxConfig::builder`](crate::NtxConfig::builder).
    #[must_use]
    pub fn nested(counts: &[u32]) -> Self {
        assert!(
            !counts.is_empty() && counts.len() <= MAX_LOOPS,
            "loop nest depth must be 1..=5"
        );
        let mut bounds = [1u32; MAX_LOOPS];
        bounds[..counts.len()].copy_from_slice(counts);
        Self {
            bounds,
            outer: counts.len(),
            init_level: 1,
            store_level: 1,
        }
    }

    /// Sets the init and store levels (returns the modified nest).
    #[must_use]
    pub fn with_levels(mut self, init_level: usize, store_level: usize) -> Self {
        self.init_level = init_level;
        self.store_level = store_level;
        self
    }

    /// Iteration count of loop `level` (0 = innermost).
    #[must_use]
    pub fn bound(&self, level: usize) -> u32 {
        self.bounds[level]
    }

    /// All five bounds, innermost first (disabled loops read as 1).
    #[must_use]
    pub fn bounds(&self) -> [u32; MAX_LOOPS] {
        self.bounds
    }

    /// Number of enabled loops.
    #[must_use]
    pub fn outer_level(&self) -> usize {
        self.outer
    }

    /// Accumulator re-initialisation level.
    #[must_use]
    pub fn init_level(&self) -> usize {
        self.init_level
    }

    /// Reduction write-back level.
    #[must_use]
    pub fn store_level(&self) -> usize {
        self.store_level
    }

    /// Total innermost iterations (= busy cycles without stalls).
    #[must_use]
    pub fn total_iterations(&self) -> u64 {
        self.bounds[..self.outer]
            .iter()
            .map(|&b| u64::from(b))
            .product()
    }

    /// Number of store events a reduction with this nest produces.
    #[must_use]
    pub fn store_events(&self) -> u64 {
        if self.store_level == 0 {
            self.total_iterations()
        } else {
            self.bounds[self.store_level..self.outer]
                .iter()
                .map(|&b| u64::from(b))
                .product()
        }
    }

    /// Number of accumulator initialisation events.
    #[must_use]
    pub fn init_events(&self) -> u64 {
        self.bounds[self.init_level.min(self.outer)..self.outer]
            .iter()
            .map(|&b| u64::from(b))
            .product()
    }

    /// Validates bounds and levels against the hardware limits.
    ///
    /// # Errors
    ///
    /// See [`ConfigError`] variants for each violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.outer == 0 || self.outer > MAX_LOOPS {
            return Err(ConfigError::InvalidOuterLevel { outer: self.outer });
        }
        for (level, &b) in self.bounds[..self.outer].iter().enumerate() {
            if b == 0 {
                return Err(ConfigError::ZeroLoopBound { level });
            }
            if b > u32::from(u16::MAX) {
                return Err(ConfigError::LoopBoundTooLarge { level, bound: b });
            }
        }
        if self.init_level > self.outer {
            return Err(ConfigError::LevelOutOfRange {
                which: "init",
                level: self.init_level,
                outer: self.outer,
            });
        }
        if self.store_level > self.outer {
            return Err(ConfigError::LevelOutOfRange {
                which: "store",
                level: self.store_level,
                outer: self.outer,
            });
        }
        Ok(())
    }
}

/// Dynamic counter state of the loop cascade during execution.
///
/// One call to [`LoopCounters::advance`] models one innermost iteration
/// completing; it reports the outermost loop level that incremented,
/// which is what selects the AGU stride for that cycle (§II-D).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopCounters {
    nest: LoopNest,
    counters: [u32; MAX_LOOPS],
    /// Flattened element index since the last accumulator init (drives
    /// the argmin/argmax index counter).
    index_counter: u32,
    done: bool,
}

impl LoopCounters {
    /// Starts a fresh execution of `nest`.
    #[must_use]
    pub fn new(nest: LoopNest) -> Self {
        Self {
            nest,
            counters: [0; MAX_LOOPS],
            index_counter: 0,
            done: nest.total_iterations() == 0,
        }
    }

    /// The static nest being executed.
    #[must_use]
    pub fn nest(&self) -> &LoopNest {
        &self.nest
    }

    /// Current counter values, innermost first.
    #[must_use]
    pub fn counters(&self) -> [u32; MAX_LOOPS] {
        self.counters
    }

    /// The argmin/argmax index counter (elements since the last init).
    #[must_use]
    pub fn index_counter(&self) -> u32 {
        self.index_counter
    }

    /// True when every iteration has been issued.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True if the accumulator must be (re-)initialised before executing
    /// the current iteration: all counters below the init level are zero.
    #[must_use]
    pub fn at_init(&self) -> bool {
        self.counters[..self.nest.init_level]
            .iter()
            .all(|&c| c == 0)
    }

    /// True if the store path fires after executing the current
    /// iteration: all counters below the store level are at their last
    /// value (store level 0 fires every cycle).
    #[must_use]
    pub fn at_store(&self) -> bool {
        self.counters[..self.nest.store_level]
            .iter()
            .zip(&self.nest.bounds)
            .all(|(&c, &b)| c + 1 == b)
    }

    /// Number of upcoming iterations (including the current one) that
    /// are guaranteed to advance at loop level 0 without triggering an
    /// init or store event — the window the simulator's burst fast path
    /// may execute in one go. Each such iteration is equivalent to one
    /// [`LoopCounters::advance`] returning `Some(0)` with
    /// [`LoopCounters::at_init`] and [`LoopCounters::at_store`] false
    /// throughout.
    #[must_use]
    pub fn level0_run_len(&self) -> u32 {
        if self.done
            || self.nest.init_level == 0
            || self.nest.store_level == 0
            || self.at_init()
            || self.at_store()
        {
            return 0;
        }
        // Iterations at counters[0] in [c, bounds[0]-2] advance at level
        // 0; the one at bounds[0]-1 wraps (and may store), ending the
        // run. `at_init` is monotonically false once counters[0] > 0.
        self.nest.bounds[0] - 1 - self.counters[0]
    }

    /// Bulk-advances `n` innermost iterations that all stay within the
    /// innermost loop — exactly `n` calls to [`LoopCounters::advance`]
    /// each returning `Some(0)`. Callers must stay within
    /// [`LoopCounters::level0_run_len`].
    pub fn advance_level0_by(&mut self, n: u32) {
        debug_assert!(!self.done, "bulk advance on a finished nest");
        debug_assert!(
            self.counters[0] + n < self.nest.bounds[0],
            "bulk advance must not wrap the innermost loop"
        );
        debug_assert!(
            self.nest.init_level > 0,
            "level-0 bulk advance would cross the init level"
        );
        self.counters[0] += n;
        self.index_counter = self.index_counter.wrapping_add(n);
    }

    /// Completes the current innermost iteration and advances the
    /// cascade. Returns the outermost loop level that incremented (the
    /// AGU stride selector), or `None` when the nest finished.
    pub fn advance(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        self.index_counter = self.index_counter.wrapping_add(1);
        for level in 0..self.nest.outer {
            self.counters[level] += 1;
            if self.counters[level] < self.nest.bounds[level] {
                // Reset the index counter when crossing the init level.
                if level >= self.nest.init_level {
                    self.index_counter = 0;
                }
                return Some(level);
            }
            self.counters[level] = 0;
        }
        self.done = true;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_nest_counts() {
        let n = LoopNest::vector(10);
        assert_eq!(n.total_iterations(), 10);
        assert_eq!(n.store_events(), 1);
        assert_eq!(n.init_events(), 1);
        n.validate().expect("valid");
    }

    #[test]
    fn elementwise_stores_every_cycle() {
        let n = LoopNest::elementwise(7);
        assert_eq!(n.store_events(), 7);
    }

    #[test]
    fn nested_counts_multiply() {
        let n = LoopNest::nested(&[4, 3, 2]);
        assert_eq!(n.total_iterations(), 24);
        assert_eq!(n.store_events(), 6); // store level 1: per loop-0 pass
        let n = n.with_levels(2, 2);
        assert_eq!(n.store_events(), 2);
        assert_eq!(n.init_events(), 2);
    }

    #[test]
    fn validate_rejects_zero_bound() {
        let n = LoopNest::nested(&[0, 3]);
        assert!(matches!(
            n.validate(),
            Err(ConfigError::ZeroLoopBound { level: 0 })
        ));
    }

    #[test]
    fn validate_rejects_large_bound() {
        let n = LoopNest::vector(70_000);
        assert!(matches!(
            n.validate(),
            Err(ConfigError::LoopBoundTooLarge { level: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_levels() {
        let n = LoopNest::nested(&[2, 2]).with_levels(3, 1);
        assert!(matches!(
            n.validate(),
            Err(ConfigError::LevelOutOfRange { which: "init", .. })
        ));
        let n = LoopNest::nested(&[2, 2]).with_levels(1, 5);
        assert!(matches!(
            n.validate(),
            Err(ConfigError::LevelOutOfRange { which: "store", .. })
        ));
    }

    #[test]
    fn counters_walk_the_full_nest() {
        let nest = LoopNest::nested(&[3, 2]);
        let mut c = LoopCounters::new(nest);
        let mut seen = Vec::new();
        loop {
            seen.push(c.counters());
            if c.advance().is_none() {
                break;
            }
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0][..2], [0, 0]);
        assert_eq!(seen[2][..2], [2, 0]);
        assert_eq!(seen[3][..2], [0, 1]);
        assert_eq!(seen[5][..2], [2, 1]);
        assert!(c.is_done());
    }

    #[test]
    fn advance_reports_stride_selector() {
        let nest = LoopNest::nested(&[2, 2]);
        let mut c = LoopCounters::new(nest);
        // it 0 -> innermost increments (level 0)
        assert_eq!(c.advance(), Some(0));
        // it 1 -> loop 0 wraps, loop 1 increments (level 1)
        assert_eq!(c.advance(), Some(1));
        assert_eq!(c.advance(), Some(0));
        // last iteration wraps everything -> done
        assert_eq!(c.advance(), None);
        assert!(c.is_done());
    }

    #[test]
    fn init_store_flags_for_gemv_shape() {
        // 3 columns per row, 2 rows; init/store at level 1.
        let nest = LoopNest::nested(&[3, 2]).with_levels(1, 1);
        let mut c = LoopCounters::new(nest);
        let mut events = Vec::new();
        loop {
            events.push((c.at_init(), c.at_store()));
            if c.advance().is_none() {
                break;
            }
        }
        assert_eq!(
            events,
            vec![
                (true, false),
                (false, false),
                (false, true),
                (true, false),
                (false, false),
                (false, true),
            ]
        );
    }

    #[test]
    fn index_counter_resets_at_init_boundary() {
        let nest = LoopNest::nested(&[3, 2]).with_levels(1, 1);
        let mut c = LoopCounters::new(nest);
        let mut indices = Vec::new();
        loop {
            indices.push(c.index_counter());
            if c.advance().is_none() {
                break;
            }
        }
        assert_eq!(indices, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn store_level_zero_fires_every_cycle() {
        let nest = LoopNest::elementwise(3);
        let mut c = LoopCounters::new(nest);
        for _ in 0..3 {
            assert!(c.at_store());
            c.advance();
        }
    }

    #[test]
    fn level0_run_matches_stepped_advance() {
        // For every state of a mixed nest, the advertised run length
        // must be exactly the number of upcoming Some(0) advances with
        // no init/store events, and bulk-advancing must land in the
        // same state as stepping.
        let nest = LoopNest::nested(&[5, 2, 3]).with_levels(2, 1);
        let mut c = LoopCounters::new(nest);
        loop {
            let run = c.level0_run_len();
            let mut probe = c.clone();
            for _ in 0..run {
                assert!(!probe.at_init(), "init inside run");
                assert!(!probe.at_store(), "store inside run");
                assert_eq!(probe.advance(), Some(0), "non-level-0 advance inside run");
            }
            if run > 0 {
                let mut bulk = c.clone();
                bulk.advance_level0_by(run);
                assert_eq!(bulk, probe);
            }
            if c.advance().is_none() {
                break;
            }
        }
    }

    #[test]
    fn level0_run_is_zero_for_elementwise_stores() {
        let mut c = LoopCounters::new(LoopNest::elementwise(8));
        assert_eq!(c.level0_run_len(), 0); // stores every cycle
        c.advance();
        assert_eq!(c.level0_run_len(), 0);
    }

    #[test]
    fn empty_nest_is_done_immediately() {
        // A zero bound fails validation, but the counters must still be
        // safe if constructed directly.
        let nest = LoopNest::nested(&[1]);
        let mut c = LoopCounters::new(nest);
        assert!(!c.is_done());
        assert_eq!(c.advance(), None);
        assert!(c.is_done());
    }
}
