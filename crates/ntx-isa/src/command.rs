//! The NTX command set (Fig. 3b of the paper).
//!
//! The DATE paper prints the supported commands only as a figure; the
//! mnemonics here follow the textual description in §II-C and the
//! companion IEEE TC article: a fast FMAC reduction, element-wise vector
//! arithmetic with either a memory or the ALU-register operand, min/max
//! reductions with the index counter (argmin/argmax), ReLU, threshold &
//! mask, and memcpy/memset.

use crate::error::ConfigError;
use ntx_fpu::FpuOp;

/// Selects the second operand `y` of a two-operand command: read through
/// AGU 1 or taken from the ALU scalar register `R` (Fig. 3b's `[..|..]`
/// notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OperandSelect {
    /// `y = *AGU1`.
    #[default]
    Memory,
    /// `y = R`.
    Register,
}

/// How the accumulator is initialised at the init level (Fig. 3a:
/// `accu = [0 | *AGU2]`, extended with the full-precision spill
/// restore that makes multi-pass split-K reductions bit-exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccuInit {
    /// Start the reduction from zero.
    #[default]
    Zero,
    /// Load the running value from memory through AGU 2 (read-modify-
    /// write accumulation, e.g. accumulating output channels in place).
    /// The loaded value is a rounded `f32`, so chaining passes this way
    /// rounds at every pass boundary.
    Memory,
    /// Restore the complete wide-accumulator state — all
    /// [`ntx_fpu::SPILL_WORDS`] words of the 640-bit fixed-point value
    /// plus sticky flags — from memory through AGU 2. Together with
    /// [`NtxConfig::wide_store`](crate::NtxConfig::wide_store) this
    /// resumes a reduction across command boundaries with **no**
    /// intermediate rounding: a split-K GEMM accumulated this way is
    /// bit-identical to a single unsplit reduction.
    Wide,
}

/// What a reduction command writes back at the store level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreSource {
    /// The rounded wide accumulator (MAC commands).
    Accumulator,
    /// The comparator value (min/max commands).
    CompareValue,
    /// The index counter (argmin/argmax commands), stored as a `u32`
    /// bit pattern.
    CompareIndex,
    /// The per-element FPU output (element-wise commands).
    Element,
}

/// One NTX command, the unit of work offloaded by the RISC-V core.
///
/// Reduction commands (`Mac`, `Min`, `Max`, `ArgMin`, `ArgMax`) run the
/// FPU in the innermost loop and write back at the configured store
/// level; element-wise commands produce one output per innermost
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Command {
    /// `accu += *AGU0 * y` — the fast FMAC reduction (2 flop/cycle).
    Mac {
        /// Second multiplicand: memory stream or scalar register.
        operand: OperandSelect,
    },
    /// `*AGU2 = *AGU0 + y`.
    Add {
        /// Second addend: memory stream or scalar register.
        operand: OperandSelect,
    },
    /// `*AGU2 = *AGU0 - y`.
    Sub {
        /// Subtrahend: memory stream or scalar register.
        operand: OperandSelect,
    },
    /// `*AGU2 = *AGU0 * y`.
    Mul {
        /// Second multiplicand: memory stream or scalar register.
        operand: OperandSelect,
    },
    /// Running minimum of the `*AGU0` stream; stores the value.
    Min,
    /// Running maximum of the `*AGU0` stream; stores the value.
    Max,
    /// Running minimum of the `*AGU0` stream; stores the index counter.
    ArgMin,
    /// Running maximum of the `*AGU0` stream; stores the index counter.
    ArgMax,
    /// `*AGU2 = max(*AGU0, 0)` — rectified linear unit.
    Relu,
    /// `*AGU2 = (*AGU0 > R) ? *AGU1 : 0` — threshold & mask.
    ThresholdMask,
    /// `*AGU2 = *AGU0` — memcpy through the streamer (0 flop).
    Copy,
    /// `*AGU2 = R` — memset through the streamer (0 flop).
    Set,
}

impl Command {
    /// The FPU micro-op this command issues each innermost cycle.
    #[must_use]
    pub fn fpu_op(self) -> FpuOp {
        match self {
            Command::Mac { .. } => FpuOp::Mac,
            Command::Add { .. } => FpuOp::Add,
            Command::Sub { .. } => FpuOp::Sub,
            Command::Mul { .. } => FpuOp::Mul,
            Command::Min | Command::ArgMin => FpuOp::Min,
            Command::Max | Command::ArgMax => FpuOp::Max,
            Command::Relu => FpuOp::Relu,
            Command::ThresholdMask => FpuOp::ThresholdMask,
            Command::Copy => FpuOp::Copy,
            Command::Set => FpuOp::Set,
        }
    }

    /// True for commands that reduce over the loop nest instead of
    /// producing one output per element.
    #[must_use]
    pub fn is_reduction(self) -> bool {
        matches!(
            self,
            Command::Mac { .. } | Command::Min | Command::Max | Command::ArgMin | Command::ArgMax
        )
    }

    /// What the store path writes through AGU 2.
    #[must_use]
    pub fn store_source(self) -> StoreSource {
        match self {
            Command::Mac { .. } => StoreSource::Accumulator,
            Command::Min | Command::Max => StoreSource::CompareValue,
            Command::ArgMin | Command::ArgMax => StoreSource::CompareIndex,
            _ => StoreSource::Element,
        }
    }

    /// Number of TCDM reads issued per innermost iteration.
    #[must_use]
    pub fn reads_per_element(self) -> u32 {
        match self {
            Command::Mac { operand }
            | Command::Add { operand }
            | Command::Sub { operand }
            | Command::Mul { operand } => match operand {
                OperandSelect::Memory => 2,
                OperandSelect::Register => 1,
            },
            Command::ThresholdMask => 2,
            Command::Min | Command::Max | Command::ArgMin | Command::ArgMax => 1,
            Command::Relu | Command::Copy => 1,
            Command::Set => 0,
        }
    }

    /// Floating-point operations retired per innermost iteration, the
    /// throughput column of Fig. 3b.
    #[must_use]
    pub fn flops_per_element(self) -> u64 {
        self.fpu_op().flops_per_element()
    }

    /// Encodes the command into the 32-bit command-register format.
    ///
    /// Layout: bits `[7:0]` opcode, bit `8` operand select (1 = register).
    #[must_use]
    pub fn encode(self) -> u32 {
        let (op, sel): (u32, OperandSelect) = match self {
            Command::Mac { operand } => (0x01, operand),
            Command::Add { operand } => (0x02, operand),
            Command::Sub { operand } => (0x03, operand),
            Command::Mul { operand } => (0x04, operand),
            Command::Min => (0x05, OperandSelect::Memory),
            Command::Max => (0x06, OperandSelect::Memory),
            Command::ArgMin => (0x07, OperandSelect::Memory),
            Command::ArgMax => (0x08, OperandSelect::Memory),
            Command::Relu => (0x09, OperandSelect::Memory),
            Command::ThresholdMask => (0x0a, OperandSelect::Memory),
            Command::Copy => (0x0b, OperandSelect::Memory),
            Command::Set => (0x0c, OperandSelect::Memory),
        };
        op | (u32::from(sel == OperandSelect::Register) << 8)
    }

    /// Decodes a command-register word.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownCommandEncoding`] for opcodes outside
    /// the command set.
    pub fn decode(raw: u32) -> Result<Self, ConfigError> {
        let operand = if raw & 0x100 != 0 {
            OperandSelect::Register
        } else {
            OperandSelect::Memory
        };
        Ok(match raw & 0xff {
            0x01 => Command::Mac { operand },
            0x02 => Command::Add { operand },
            0x03 => Command::Sub { operand },
            0x04 => Command::Mul { operand },
            0x05 => Command::Min,
            0x06 => Command::Max,
            0x07 => Command::ArgMin,
            0x08 => Command::ArgMax,
            0x09 => Command::Relu,
            0x0a => Command::ThresholdMask,
            0x0b => Command::Copy,
            0x0c => Command::Set,
            _ => return Err(ConfigError::UnknownCommandEncoding { raw }),
        })
    }

    /// All distinct command variants (with both operand selections where
    /// applicable), used by exhaustive tests and documentation tables.
    #[must_use]
    pub fn all() -> Vec<Command> {
        let mut v = Vec::new();
        for operand in [OperandSelect::Memory, OperandSelect::Register] {
            v.push(Command::Mac { operand });
            v.push(Command::Add { operand });
            v.push(Command::Sub { operand });
            v.push(Command::Mul { operand });
        }
        v.extend([
            Command::Min,
            Command::Max,
            Command::ArgMin,
            Command::ArgMax,
            Command::Relu,
            Command::ThresholdMask,
            Command::Copy,
            Command::Set,
        ]);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all() {
        for cmd in Command::all() {
            let enc = cmd.encode();
            let dec = Command::decode(enc).expect("known encoding");
            assert_eq!(cmd, dec, "roundtrip of {cmd:?}");
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            Command::decode(0xff),
            Err(ConfigError::UnknownCommandEncoding { raw: 0xff })
        ));
        assert!(Command::decode(0).is_err());
    }

    #[test]
    fn mac_throughput_is_two_flops() {
        let mac = Command::Mac {
            operand: OperandSelect::Memory,
        };
        assert_eq!(mac.flops_per_element(), 2);
        assert_eq!(mac.reads_per_element(), 2);
        assert!(mac.is_reduction());
    }

    #[test]
    fn register_operand_halves_reads() {
        let mac = Command::Mac {
            operand: OperandSelect::Register,
        };
        assert_eq!(mac.reads_per_element(), 1);
    }

    #[test]
    fn copy_set_move_data_without_flops() {
        assert_eq!(Command::Copy.flops_per_element(), 0);
        assert_eq!(Command::Set.flops_per_element(), 0);
        assert_eq!(Command::Set.reads_per_element(), 0);
        assert_eq!(Command::Copy.reads_per_element(), 1);
    }

    #[test]
    fn store_sources() {
        assert_eq!(
            Command::Mac {
                operand: OperandSelect::Memory
            }
            .store_source(),
            StoreSource::Accumulator
        );
        assert_eq!(Command::Min.store_source(), StoreSource::CompareValue);
        assert_eq!(Command::ArgMax.store_source(), StoreSource::CompareIndex);
        assert_eq!(Command::Relu.store_source(), StoreSource::Element);
    }

    #[test]
    fn reductions_classified() {
        assert!(Command::ArgMin.is_reduction());
        assert!(!Command::Relu.is_reduction());
        assert!(!Command::Copy.is_reduction());
    }
}
