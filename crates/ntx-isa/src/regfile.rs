//! Memory-mapped configuration register file (§II-E).
//!
//! *"Each NTX has a set of configuration registers that are mapped into
//! the memory space of the associated RISC-V core. [...] Writing to the
//! command register causes the current configuration to be copied into
//! an internal buffer and executed, allowing the CPU to prepare the next
//! command in parallel."*
//!
//! [`RegFile`] models the staging copy of those registers; writing
//! [`RegOffset::COMMAND`] decodes and returns the committed
//! [`NtxConfig`], which the execution engine double-buffers.

use crate::agu::AguConfig;
use crate::command::{AccuInit, Command};
use crate::config::NtxConfig;
use crate::error::ConfigError;
use crate::loops::{LoopNest, MAX_LOOPS};

/// Size of one NTX register window in bytes.
pub const NTX_REGFILE_BYTES: u32 = 0x80;

/// Named byte offsets into the NTX register window.
///
/// All registers are 32-bit and word-aligned; the layout groups the loop
/// bounds, levels, AGU bases, strides and the scalar register, with the
/// command register last so a descriptor can be written as one ascending
/// burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegOffset;

impl RegOffset {
    /// Loop iteration counts, `LOOP_BOUND + 4*level`.
    pub const LOOP_BOUND: u32 = 0x00;
    /// Number of enabled loops.
    pub const OUTER_LEVEL: u32 = 0x14;
    /// Accumulator init level.
    pub const INIT_LEVEL: u32 = 0x18;
    /// Reduction store level.
    pub const STORE_LEVEL: u32 = 0x1c;
    /// AGU base addresses, `AGU_BASE + 4*agu`.
    pub const AGU_BASE: u32 = 0x20;
    /// Accumulator init select: bits `[1:0]` = 0 zero / 1 memory /
    /// 2 wide restore; bit `2` enables wide-spill stores.
    pub const ACCU_INIT: u32 = 0x2c;
    /// AGU strides, `AGU_STRIDE + 4*(agu*MAX_LOOPS + slot)`.
    pub const AGU_STRIDE: u32 = 0x30;
    /// ALU scalar register (f32 bit pattern).
    pub const ALU_REG: u32 = 0x6c;
    /// Command register; writing commits and starts execution.
    pub const COMMAND: u32 = 0x70;
    /// Read-only status register (bit 0 = busy).
    pub const STATUS: u32 = 0x74;
}

/// Effect of a register write, as seen by the execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteEffect {
    /// The write only updated the staging registers.
    Staged,
    /// The write hit the command register: the staged configuration was
    /// committed and execution of the returned command must start.
    Commit(Box<NtxConfig>),
}

/// The staging configuration registers of one NTX.
///
/// # Example
///
/// ```
/// use ntx_isa::{NtxConfig, RegFile, RegOffset, Command, LoopNest, AguConfig, OperandSelect};
///
/// // Drive the register file the way the RISC-V core does.
/// let mut rf = RegFile::new();
/// rf.write(RegOffset::LOOP_BOUND, 8)?;          // 8 iterations
/// rf.write(RegOffset::OUTER_LEVEL, 1)?;
/// rf.write(RegOffset::INIT_LEVEL, 1)?;
/// rf.write(RegOffset::STORE_LEVEL, 1)?;
/// rf.write(RegOffset::AGU_BASE, 0x000)?;        // x
/// rf.write(RegOffset::AGU_BASE + 4, 0x100)?;    // y
/// rf.write(RegOffset::AGU_BASE + 8, 0x200)?;    // out
/// for slot in 0..5 {
///     rf.write(RegOffset::AGU_STRIDE + 4 * slot, 4)?;       // AGU0 strides
///     rf.write(RegOffset::AGU_STRIDE + 20 + 4 * slot, 4)?;  // AGU1 strides
/// }
/// let effect = rf.write(
///     RegOffset::COMMAND,
///     Command::Mac { operand: OperandSelect::Memory }.encode(),
/// )?;
/// # Ok::<(), ntx_isa::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    words: [u32; (NTX_REGFILE_BYTES / 4) as usize],
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

impl RegFile {
    /// Creates a register file with hardware reset values (all zeros
    /// except a depth-1 loop nest so a bare command is well formed).
    #[must_use]
    pub fn new() -> Self {
        let mut rf = Self {
            words: [0; (NTX_REGFILE_BYTES / 4) as usize],
        };
        rf.words[(RegOffset::LOOP_BOUND / 4) as usize] = 1;
        rf.words[(RegOffset::OUTER_LEVEL / 4) as usize] = 1;
        rf.words[(RegOffset::INIT_LEVEL / 4) as usize] = 1;
        rf.words[(RegOffset::STORE_LEVEL / 4) as usize] = 1;
        rf
    }

    fn check(offset: u32) -> Result<usize, ConfigError> {
        if !offset.is_multiple_of(4) || offset >= NTX_REGFILE_BYTES {
            return Err(ConfigError::RegisterOffsetOutOfRange { offset });
        }
        Ok((offset / 4) as usize)
    }

    /// Writes a staging register.
    ///
    /// Writing [`RegOffset::COMMAND`] additionally decodes and validates
    /// the staged configuration and returns it for execution
    /// ([`WriteEffect::Commit`]); the staging registers stay intact so the
    /// core can modify only what differs for the next command.
    ///
    /// # Errors
    ///
    /// [`ConfigError::RegisterOffsetOutOfRange`] for a bad offset, or any
    /// validation error when a command write commits an ill-formed
    /// configuration.
    pub fn write(&mut self, offset: u32, value: u32) -> Result<WriteEffect, ConfigError> {
        let idx = Self::check(offset)?;
        if offset == RegOffset::STATUS {
            // Status is read-only; the write is silently discarded like
            // the RTL does.
            return Ok(WriteEffect::Staged);
        }
        self.words[idx] = value;
        if offset == RegOffset::COMMAND {
            let cfg = self.staged_config()?;
            return Ok(WriteEffect::Commit(Box::new(cfg)));
        }
        Ok(WriteEffect::Staged)
    }

    /// Reads a staging register; `busy` supplies the live status bit.
    ///
    /// # Errors
    ///
    /// [`ConfigError::RegisterOffsetOutOfRange`] for a bad offset.
    pub fn read(&self, offset: u32, busy: bool) -> Result<u32, ConfigError> {
        let idx = Self::check(offset)?;
        if offset == RegOffset::STATUS {
            return Ok(u32::from(busy));
        }
        Ok(self.words[idx])
    }

    /// Decodes the staged registers into a validated [`NtxConfig`].
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] the staged values violate.
    pub fn staged_config(&self) -> Result<NtxConfig, ConfigError> {
        let w = |off: u32| self.words[(off / 4) as usize];
        let mut counts = Vec::new();
        let outer = w(RegOffset::OUTER_LEVEL) as usize;
        if outer == 0 || outer > MAX_LOOPS {
            return Err(ConfigError::InvalidOuterLevel { outer });
        }
        for level in 0..outer {
            counts.push(w(RegOffset::LOOP_BOUND + 4 * level as u32));
        }
        let loops = LoopNest::nested(&counts).with_levels(
            w(RegOffset::INIT_LEVEL) as usize,
            w(RegOffset::STORE_LEVEL) as usize,
        );
        let mut agus = [AguConfig::default(); 3];
        for (i, agu) in agus.iter_mut().enumerate() {
            let mut strides = [0i32; MAX_LOOPS];
            for (slot, s) in strides.iter_mut().enumerate() {
                *s = w(RegOffset::AGU_STRIDE + 4 * (i * MAX_LOOPS + slot) as u32) as i32;
            }
            *agu = AguConfig::new(w(RegOffset::AGU_BASE + 4 * i as u32), strides);
        }
        let command = Command::decode(w(RegOffset::COMMAND))?;
        let accu_word = w(RegOffset::ACCU_INIT);
        let accu_init = match accu_word & 3 {
            0 => AccuInit::Zero,
            1 => AccuInit::Memory,
            _ => AccuInit::Wide,
        };
        let cfg = NtxConfig {
            command,
            loops,
            agus,
            accu_init,
            wide_store: accu_word & 4 != 0,
            register: f32::from_bits(w(RegOffset::ALU_REG)),
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Loads a complete configuration into the staging registers (the
    /// driver-side inverse of [`Self::staged_config`]); does not commit.
    pub fn load_config(&mut self, cfg: &NtxConfig) {
        let mut set = |off: u32, v: u32| self.words[(off / 4) as usize] = v;
        for level in 0..MAX_LOOPS {
            set(
                RegOffset::LOOP_BOUND + 4 * level as u32,
                cfg.loops.bounds()[level],
            );
        }
        set(RegOffset::OUTER_LEVEL, cfg.loops.outer_level() as u32);
        set(RegOffset::INIT_LEVEL, cfg.loops.init_level() as u32);
        set(RegOffset::STORE_LEVEL, cfg.loops.store_level() as u32);
        for (i, agu) in cfg.agus.iter().enumerate() {
            set(RegOffset::AGU_BASE + 4 * i as u32, agu.base);
            for (slot, &s) in agu.strides.iter().enumerate() {
                set(
                    RegOffset::AGU_STRIDE + 4 * (i * MAX_LOOPS + slot) as u32,
                    s as u32,
                );
            }
        }
        let accu_word = match cfg.accu_init {
            AccuInit::Zero => 0,
            AccuInit::Memory => 1,
            AccuInit::Wide => 2,
        } | (u32::from(cfg.wide_store) << 2);
        set(RegOffset::ACCU_INIT, accu_word);
        set(RegOffset::ALU_REG, cfg.register.to_bits());
        set(RegOffset::COMMAND, cfg.command.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::OperandSelect;

    fn sample_config() -> NtxConfig {
        NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::nested(&[16, 4]).with_levels(1, 1))
            .agu(0, AguConfig::stream(0x000, 4))
            .agu(1, AguConfig::new(0x100, [4, -60, 0, 0, 0]))
            .agu(2, AguConfig::new(0x200, [0, 4, 0, 0, 0]))
            .register(2.5)
            .build()
            .expect("valid")
    }

    #[test]
    fn load_then_decode_roundtrips() {
        let cfg = sample_config();
        let mut rf = RegFile::new();
        rf.load_config(&cfg);
        let decoded = rf.staged_config().expect("valid staged config");
        assert_eq!(decoded, cfg);
    }

    #[test]
    fn wide_accu_modes_roundtrip_through_registers() {
        let mut cfg = sample_config();
        cfg.accu_init = AccuInit::Wide;
        cfg.wide_store = true;
        cfg.agus[2] = AguConfig::new(0x200, [0, 88, 88, 0, 0]);
        let mut rf = RegFile::new();
        rf.load_config(&cfg);
        let decoded = rf.staged_config().expect("valid staged config");
        assert_eq!(decoded, cfg);
        // wide_store without wide restore (final split-K pass shape).
        cfg.accu_init = AccuInit::Memory;
        cfg.wide_store = false;
        rf.load_config(&cfg);
        assert_eq!(rf.staged_config().expect("valid"), cfg);
    }

    #[test]
    fn command_write_commits() {
        let cfg = sample_config();
        let mut rf = RegFile::new();
        rf.load_config(&cfg);
        let effect = rf
            .write(RegOffset::COMMAND, cfg.command.encode())
            .expect("in range");
        match effect {
            WriteEffect::Commit(committed) => assert_eq!(*committed, cfg),
            WriteEffect::Staged => panic!("command write must commit"),
        }
    }

    #[test]
    fn non_command_writes_stage_only() {
        let mut rf = RegFile::new();
        let effect = rf.write(RegOffset::LOOP_BOUND, 9).expect("in range");
        assert_eq!(effect, WriteEffect::Staged);
        assert_eq!(rf.read(RegOffset::LOOP_BOUND, false).unwrap(), 9);
    }

    #[test]
    fn status_reflects_busy_and_ignores_writes() {
        let mut rf = RegFile::new();
        assert_eq!(rf.read(RegOffset::STATUS, true).unwrap(), 1);
        assert_eq!(rf.read(RegOffset::STATUS, false).unwrap(), 0);
        rf.write(RegOffset::STATUS, 0xffff).expect("discarded");
        assert_eq!(rf.read(RegOffset::STATUS, false).unwrap(), 0);
    }

    #[test]
    fn bad_offsets_rejected() {
        let mut rf = RegFile::new();
        assert!(rf.write(0x80, 0).is_err());
        assert!(rf.write(0x02, 0).is_err());
        assert!(rf.read(0x400, false).is_err());
    }

    #[test]
    fn committing_invalid_config_fails() {
        let mut rf = RegFile::new();
        rf.write(RegOffset::LOOP_BOUND, 0).expect("staged");
        let err = rf
            .write(
                RegOffset::COMMAND,
                Command::Mac {
                    operand: OperandSelect::Memory,
                }
                .encode(),
            )
            .unwrap_err();
        assert!(matches!(err, ConfigError::ZeroLoopBound { level: 0 }));
    }

    #[test]
    fn reset_values_form_a_valid_nest() {
        let rf = RegFile::new();
        // Only the command register is missing a valid opcode at reset.
        assert!(matches!(
            rf.staged_config(),
            Err(ConfigError::UnknownCommandEncoding { .. })
        ));
    }

    #[test]
    fn negative_strides_survive_the_u32_window() {
        let cfg = sample_config();
        let mut rf = RegFile::new();
        rf.load_config(&cfg);
        let decoded = rf.staged_config().expect("valid");
        assert_eq!(decoded.agus[1].strides[1], -60);
    }
}
