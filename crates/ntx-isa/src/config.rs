//! The complete NTX command configuration and its builder.

use crate::agu::AguConfig;
use crate::command::{AccuInit, Command, OperandSelect};
use crate::error::ConfigError;
use crate::loops::LoopNest;

/// Everything one offloaded NTX command needs: the command itself, the
/// loop nest, the three address generators, the accumulator init mode
/// and the ALU scalar register (§II-E).
///
/// Construct via [`NtxConfig::builder`], which validates all hardware
/// constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NtxConfig {
    /// The command to execute in the innermost loop.
    pub command: Command,
    /// The hardware loop nest.
    pub loops: LoopNest,
    /// The three address generators (0 and 1 read, 2 reads/writes).
    pub agus: [AguConfig; 3],
    /// Accumulator initialisation at the init level.
    pub accu_init: AccuInit,
    /// Store the complete wide-accumulator spill image
    /// ([`ntx_fpu::SPILL_WORDS`] words through AGU 2) at each store
    /// event instead of the rounded `f32` — the write half of the
    /// bit-exact multi-pass reduction protocol (see [`AccuInit::Wide`]).
    pub wide_store: bool,
    /// The ALU scalar register `R`.
    pub register: f32,
}

impl NtxConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> NtxConfigBuilder {
        NtxConfigBuilder::new()
    }

    /// Validates the full configuration against the hardware limits.
    ///
    /// # Errors
    ///
    /// Propagates the first violated constraint as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.loops.validate()?;
        for (i, agu) in self.agus.iter().enumerate() {
            agu.validate(i)?;
        }
        if self.command.is_reduction() && self.loops.store_level() == 0 {
            return Err(ConfigError::ReductionStoresEveryCycle);
        }
        // Only the FMAC path owns a wide accumulator; spilling or
        // restoring one from any other command is meaningless.
        let is_mac = matches!(self.command, Command::Mac { .. });
        if (self.wide_store || self.accu_init == AccuInit::Wide) && !is_mac {
            return Err(ConfigError::WideAccuOnNonMac);
        }
        Ok(())
    }

    /// Total floating-point operations this command retires.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.loops.total_iterations() * self.command.flops_per_element()
    }

    /// Total TCDM read accesses: element reads plus accumulator-init
    /// reads — one word per init event under [`AccuInit::Memory`],
    /// [`ntx_fpu::SPILL_WORDS`] per init event under [`AccuInit::Wide`].
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        let element = self.loops.total_iterations() * u64::from(self.command.reads_per_element());
        let init = if self.command.is_reduction() {
            match self.accu_init {
                AccuInit::Zero => 0,
                AccuInit::Memory => self.loops.init_events(),
                AccuInit::Wide => self.loops.init_events() * ntx_fpu::SPILL_WORDS as u64,
            }
        } else {
            0
        };
        element + init
    }

    /// Total TCDM write accesses (store events; element-wise commands
    /// write every iteration, wide stores spill
    /// [`ntx_fpu::SPILL_WORDS`] words per store event).
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        if self.command.is_reduction() {
            let per_store = if self.wide_store {
                ntx_fpu::SPILL_WORDS as u64
            } else {
                1
            };
            self.loops.store_events() * per_store
        } else {
            self.loops.total_iterations()
        }
    }
}

/// Builder for [`NtxConfig`] (non-consuming, per the builder guideline).
///
/// # Example
///
/// ```
/// use ntx_isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
///
/// let cfg = NtxConfig::builder()
///     .command(Command::Set)
///     .register(1.5)
///     .loops(LoopNest::elementwise(32))
///     .agu(2, AguConfig::stream(0x400, 4))
///     .build()?;
/// assert_eq!(cfg.total_writes(), 32);
/// # Ok::<(), ntx_isa::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NtxConfigBuilder {
    command: Command,
    loops: LoopNest,
    agus: [AguConfig; 3],
    accu_init: AccuInit,
    wide_store: bool,
    register: f32,
}

impl Default for NtxConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl NtxConfigBuilder {
    /// Creates a builder with a 1-element MAC reduction as the neutral
    /// starting point.
    #[must_use]
    pub fn new() -> Self {
        Self {
            command: Command::Mac {
                operand: OperandSelect::Memory,
            },
            loops: LoopNest::vector(1),
            agus: [AguConfig::default(); 3],
            accu_init: AccuInit::Zero,
            wide_store: false,
            register: 0.0,
        }
    }

    /// Sets the command.
    pub fn command(&mut self, command: Command) -> &mut Self {
        self.command = command;
        self
    }

    /// Sets the loop nest.
    pub fn loops(&mut self, loops: LoopNest) -> &mut Self {
        self.loops = loops;
        self
    }

    /// Sets AGU `index` (0..3).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 3`.
    pub fn agu(&mut self, index: usize, config: AguConfig) -> &mut Self {
        self.agus[index] = config;
        self
    }

    /// Sets the accumulator initialisation mode.
    pub fn accu_init(&mut self, init: AccuInit) -> &mut Self {
        self.accu_init = init;
        self
    }

    /// Selects wide-spill stores: each store event writes the full
    /// accumulator image instead of the rounded `f32` (see
    /// [`NtxConfig::wide_store`]).
    pub fn wide_store(&mut self, wide: bool) -> &mut Self {
        self.wide_store = wide;
        self
    }

    /// Sets the ALU scalar register `R`.
    pub fn register(&mut self, r: f32) -> &mut Self {
        self.register = r;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated hardware constraint.
    pub fn build(&self) -> Result<NtxConfig, ConfigError> {
        let cfg = NtxConfig {
            command: self.command,
            loops: self.loops,
            agus: self.agus,
            accu_init: self.accu_init,
            wide_store: self.wide_store,
            register: self.register,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> Command {
        Command::Mac {
            operand: OperandSelect::Memory,
        }
    }

    #[test]
    fn builder_produces_valid_config() {
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(16))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0x100, 4))
            .agu(2, AguConfig::fixed(0x200))
            .build()
            .expect("valid");
        assert_eq!(cfg.total_flops(), 32);
        assert_eq!(cfg.total_reads(), 32);
        assert_eq!(cfg.total_writes(), 1);
    }

    #[test]
    fn reduction_with_elementwise_store_rejected() {
        let err = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::elementwise(4))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ReductionStoresEveryCycle);
    }

    #[test]
    fn memory_init_adds_reads() {
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::nested(&[8, 4]).with_levels(1, 1))
            .accu_init(AccuInit::Memory)
            .build()
            .expect("valid");
        // 32 iterations * 2 reads + 4 init reads.
        assert_eq!(cfg.total_reads(), 68);
        assert_eq!(cfg.total_writes(), 4);
    }

    #[test]
    fn wide_init_and_store_account_full_spill_images() {
        let cfg = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::nested(&[8, 4]).with_levels(1, 1))
            .accu_init(AccuInit::Wide)
            .wide_store(true)
            .build()
            .expect("valid");
        // 32 iterations * 2 reads + 4 init events * 22 spill words.
        assert_eq!(cfg.total_reads(), 64 + 4 * ntx_fpu::SPILL_WORDS as u64);
        assert_eq!(cfg.total_writes(), 4 * ntx_fpu::SPILL_WORDS as u64);
    }

    #[test]
    fn wide_accu_rejected_on_non_mac_commands() {
        let err = NtxConfig::builder()
            .command(Command::Min)
            .loops(LoopNest::vector(4))
            .accu_init(AccuInit::Wide)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::WideAccuOnNonMac);
        let err = NtxConfig::builder()
            .command(Command::Max)
            .loops(LoopNest::vector(4))
            .wide_store(true)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::WideAccuOnNonMac);
    }

    #[test]
    fn elementwise_writes_every_iteration() {
        let cfg = NtxConfig::builder()
            .command(Command::Relu)
            .loops(LoopNest::elementwise(10))
            .build()
            .expect("valid");
        assert_eq!(cfg.total_writes(), 10);
        assert_eq!(cfg.total_reads(), 10);
        assert_eq!(cfg.total_flops(), 10);
    }

    #[test]
    fn invalid_agu_rejected() {
        let err = NtxConfig::builder()
            .command(mac())
            .loops(LoopNest::vector(4))
            .agu(1, AguConfig::stream(3, 4))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::UnalignedBase { agu: 1, .. }));
    }

    #[test]
    fn builder_is_reusable() {
        let mut b = NtxConfig::builder();
        b.command(Command::Copy).loops(LoopNest::elementwise(4));
        let c1 = b.build().expect("valid");
        b.loops(LoopNest::elementwise(8));
        let c2 = b.build().expect("valid");
        assert_eq!(c1.loops.total_iterations(), 4);
        assert_eq!(c2.loops.total_iterations(), 8);
    }
}
