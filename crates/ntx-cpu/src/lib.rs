//! # ntx-cpu — native host-CPU execution of NTX jobs
//!
//! The third point on the backend curve. The cycle-accurate simulator
//! is bit-exact but slow; the analytical roofline is instant but
//! computes nothing. [`NativeBackend`] executes the same GEMM /
//! convolution / AXPY / stencil jobs directly on the host CPU at
//! memory speed, in one of two modes:
//!
//! * [`NativeMode::Fast`] — multi-accumulator, SIMD-friendly
//!   partial-sum reduction ([`reduce::LANES`] independent lanes break
//!   the FP-add latency chain, tree-combined at the end). Results
//!   carry ordinary float rounding error; measure it with
//!   [`ntx_fpu::rmse`].
//! * [`NativeMode::Exact`] — every reduction goes through the wide
//!   Kulisch [`ntx_fpu::WideAccumulator`] with exactly one rounding
//!   per architecturally-visible store, replicating the NTX datapath's
//!   per-element semantics. Outputs are bit-identical to the
//!   cycle-accurate simulator on every job kind.
//!
//! Work is sharded over contiguous output-row bands across scoped
//! threads ([`NativeBackend::with_threads`]); both modes are
//! bit-identical across thread counts because no reduction ever
//! crosses a band boundary.
//!
//! This crate is deliberately scheduler-agnostic — it depends only on
//! the kernel descriptors and the FPU model. `ntx-sched` adapts it to
//! the `Backend` trait (`NativeHost`) and dispatches per-job via
//! `BackendKind::{NativeFast, NativeExact}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reduce;

use ntx_fpu::WideAccumulator;
use ntx_kernels::blas::GemmKernel;
use ntx_kernels::conv::Conv2dKernel;

/// Laplace stencil tap coefficients, matching
/// `ntx_kernels::schedule::laplace2d_tiles`.
const STENCIL_COEFFS: [f32; 3] = [1.0, -2.0, 1.0];

/// Minimum output elements before shard-parallel execution pays for
/// thread spawn overhead; smaller jobs run on the calling thread.
const PAR_MIN_ELEMS: usize = 8192;

/// Accumulation discipline for the native kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeMode {
    /// Multi-accumulator partial sums, tree-combined: fastest, with
    /// ordinary float rounding error.
    Fast,
    /// Wide Kulisch accumulation, one rounding per stored element:
    /// bit-identical to the cycle-accurate simulator.
    Exact,
}

/// Executes NTX jobs on the host CPU.
///
/// Stateless apart from its configuration; methods take input slices
/// and return freshly-allocated outputs, so one backend can serve
/// concurrent callers by shared reference.
#[derive(Debug, Clone)]
pub struct NativeBackend {
    mode: NativeMode,
    threads: usize,
}

impl NativeBackend {
    /// Creates a backend in the given mode, running on the calling
    /// thread only.
    #[must_use]
    pub fn new(mode: NativeMode) -> Self {
        Self { mode, threads: 1 }
    }

    /// Shorthand for [`NativeMode::Fast`].
    #[must_use]
    pub fn fast() -> Self {
        Self::new(NativeMode::Fast)
    }

    /// Shorthand for [`NativeMode::Exact`].
    #[must_use]
    pub fn exact() -> Self {
        Self::new(NativeMode::Exact)
    }

    /// Shards kernels over `threads` scoped worker threads (clamped to
    /// at least one). Outputs are bit-identical at every thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured accumulation mode.
    #[must_use]
    pub fn mode(&self) -> NativeMode {
        self.mode
    }

    /// The configured shard-parallel thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `out[i] = y[i] + a * x[i]`.
    ///
    /// Exact mode seeds the accumulator from `y[i]` (the datapath's
    /// memory-init) and adds the single product exactly, rounding
    /// once — matching the simulator bit for bit.
    ///
    /// # Panics
    /// Panics if `x` and `y` have different lengths.
    #[must_use]
    pub fn axpy(&self, a: f32, x: &[f32], y: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), y.len(), "axpy operands must have equal lengths");
        let mut out = vec![0.0f32; x.len()];
        let exact = self.mode == NativeMode::Exact;
        self.banded(&mut out, 1, &|offset, band: &mut [f32]| {
            if exact {
                let mut acc = WideAccumulator::new();
                for (i, o) in band.iter_mut().enumerate() {
                    let j = offset + i;
                    acc.clear();
                    acc.add_value(y[j]);
                    acc.add_product(x[j], a);
                    *o = acc.round();
                }
            } else {
                for (i, o) in band.iter_mut().enumerate() {
                    let j = offset + i;
                    *o = a * x[j] + y[j];
                }
            }
        });
        out
    }

    /// Row-major GEMM: `C[i][j] = Σ_l A[i][l] * B[l][j]`, `C` is
    /// `m × n`.
    ///
    /// Exact mode reduces every dot product through the Kulisch
    /// accumulator (zero-initialized, one rounding per `C` element).
    /// Fast mode uses the classic `ikj` loop when `n` is wide enough —
    /// each output element then owns an independent accumulator, the
    /// matrix form of the multi-lane trick — and falls back to
    /// [`reduce::dot_fast`]'s explicit lanes for skinny outputs such
    /// as dot products (`n == 1`).
    ///
    /// # Panics
    /// Panics if `a` or `b` don't match `dims`.
    #[must_use]
    pub fn gemm(&self, dims: &GemmKernel, a: &[f32], b: &[f32]) -> Vec<f32> {
        let (m, k, n) = (dims.m as usize, dims.k as usize, dims.n as usize);
        assert_eq!(a.len(), m * k, "gemm A must be m*k elements");
        assert_eq!(b.len(), k * n, "gemm B must be k*n elements");
        let mut out = vec![0.0f32; m * n];
        let exact = self.mode == NativeMode::Exact;
        self.banded(&mut out, n.max(1), &|offset, band: &mut [f32]| {
            if exact {
                let mut acc = WideAccumulator::new();
                for (i, o) in band.iter_mut().enumerate() {
                    let (row, col) = ((offset + i) / n, (offset + i) % n);
                    acc.clear();
                    for l in 0..k {
                        acc.add_product(a[row * k + l], b[l * n + col]);
                    }
                    *o = acc.round();
                }
            } else if n >= reduce::LANES {
                // ikj: the inner loop strides unit over a row of B and
                // a row of C, giving n independent accumulators.
                for (r, row_out) in band.chunks_exact_mut(n).enumerate() {
                    let row = offset / n + r;
                    for l in 0..k {
                        let alk = a[row * k + l];
                        for (o, &blj) in row_out.iter_mut().zip(&b[l * n..l * n + n]) {
                            *o += alk * blj;
                        }
                    }
                }
            } else {
                let mut col = vec![0.0f32; k];
                for (i, o) in band.iter_mut().enumerate() {
                    let (row, c) = ((offset + i) / n, (offset + i) % n);
                    for (l, slot) in col.iter_mut().enumerate() {
                        *slot = b[l * n + c];
                    }
                    *o = reduce::dot_fast(&a[row * k..row * k + k], &col);
                }
            }
        });
        out
    }

    /// 2-D convolution, `filters` independent `k × k` kernels over one
    /// `height × width` image; output is filter-major
    /// `filters × out_height × out_width` (valid padding).
    ///
    /// # Panics
    /// Panics if `image` or `weights` don't match `kernel`, or the
    /// kernel doesn't fit the image.
    #[must_use]
    pub fn conv2d(&self, kernel: &Conv2dKernel, image: &[f32], weights: &[f32]) -> Vec<f32> {
        let (h, w) = (kernel.height as usize, kernel.width as usize);
        let (k, f) = (kernel.k as usize, kernel.filters as usize);
        assert!(k <= h && k <= w, "conv kernel must fit the image");
        assert_eq!(
            image.len(),
            h * w,
            "conv image must be height*width elements"
        );
        assert_eq!(
            weights.len(),
            k * k * f,
            "conv weights must be k*k*filters elements"
        );
        let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
        let mut out = vec![0.0f32; f * oh * ow];
        let exact = self.mode == NativeMode::Exact;
        self.banded(&mut out, ow.max(1), &|offset, band: &mut [f32]| {
            let mut acc = WideAccumulator::new();
            for (r, row_out) in band.chunks_exact_mut(ow).enumerate() {
                let row = offset / ow + r;
                let (filt, y) = (row / oh, row % oh);
                let wgt = &weights[filt * k * k..(filt + 1) * k * k];
                for (x, o) in row_out.iter_mut().enumerate() {
                    if exact {
                        acc.clear();
                        for ky in 0..k {
                            for kx in 0..k {
                                acc.add_product(image[(y + ky) * w + (x + kx)], wgt[ky * k + kx]);
                            }
                        }
                        *o = acc.round();
                    } else {
                        let mut sum = 0.0f32;
                        for ky in 0..k {
                            for kx in 0..k {
                                sum += image[(y + ky) * w + (x + kx)] * wgt[ky * k + kx];
                            }
                        }
                        *o = sum;
                    }
                }
            }
        });
        out
    }

    /// Two-pass Laplace stencil over a `height × width` grid; output
    /// is `(height-2) × (width-2)`.
    ///
    /// The datapath runs this as a horizontal `[1, -2, 1]` pass into a
    /// temporary (rounded to `f32`), then a vertical pass that
    /// re-seeds the accumulator from the temporary — so even exact
    /// mode rounds *twice* per element, and the native kernel
    /// replicates both roundings to stay bit-identical. Fast mode
    /// fuses the five-point stencil into one expression.
    ///
    /// # Panics
    /// Panics if `grid` isn't `height * width` elements or either
    /// dimension is below 3.
    #[must_use]
    pub fn stencil2d(&self, height: usize, width: usize, grid: &[f32]) -> Vec<f32> {
        assert!(
            height >= 3 && width >= 3,
            "stencil grid must be at least 3x3"
        );
        assert_eq!(
            grid.len(),
            height * width,
            "stencil grid must be height*width elements"
        );
        let (oh, ow) = (height - 2, width - 2);
        let mut out = vec![0.0f32; oh * ow];
        let c = STENCIL_COEFFS;
        let exact = self.mode == NativeMode::Exact;
        self.banded(&mut out, ow, &|offset, band: &mut [f32]| {
            let mut acc = WideAccumulator::new();
            for (r, row_out) in band.chunks_exact_mut(ow).enumerate() {
                let y = offset / ow + r;
                for (x, o) in row_out.iter_mut().enumerate() {
                    if exact {
                        // Horizontal pass: rounded intermediate.
                        acc.clear();
                        for (t, &ct) in c.iter().enumerate() {
                            acc.add_product(grid[(y + 1) * width + x + t], ct);
                        }
                        let tmp = acc.round();
                        // Vertical pass: memory-init from the
                        // intermediate, second rounding on store.
                        acc.clear();
                        acc.add_value(tmp);
                        for (t, &ct) in c.iter().enumerate() {
                            acc.add_product(grid[(y + t) * width + x + 1], ct);
                        }
                        *o = acc.round();
                    } else {
                        let center = grid[(y + 1) * width + x + 1];
                        let horiz = grid[(y + 1) * width + x] - 2.0 * center
                            + grid[(y + 1) * width + x + 2];
                        let vert =
                            grid[y * width + x + 1] - 2.0 * center + grid[(y + 2) * width + x + 1];
                        *o = horiz + vert;
                    }
                }
            }
        });
        out
    }

    /// Runs `work` over `out` split into contiguous bands of whole
    /// `granule`-element rows, one scoped thread per band. `work`
    /// receives the band's starting element offset. Reductions never
    /// cross rows, so banding cannot change any output bit.
    fn banded<F>(&self, out: &mut [f32], granule: usize, work: &F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let rows = out.len() / granule.max(1);
        let bands = self.threads.min(rows.max(1));
        if bands <= 1 || out.len() < PAR_MIN_ELEMS {
            work(0, out);
            return;
        }
        std::thread::scope(|s| {
            let mut rest = out;
            let mut row0 = 0usize;
            for b in 0..bands {
                // Spread the remainder rows over the leading bands.
                let rows_here = rows / bands + usize::from(b < rows % bands);
                let (band, tail) = rest.split_at_mut(rows_here * granule);
                rest = tail;
                let offset = row0 * granule;
                row0 += rows_here;
                s.spawn(move || work(offset, band));
            }
            // Trailing partial row (only when granule doesn't divide
            // the output, which no kernel above produces).
            if !rest.is_empty() {
                work(row0 * granule, rest);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 17;
                seed ^= seed << 5;
                ((seed % 257) as f32 - 128.0) / 7.0
            })
            .collect()
    }

    fn assert_bits_eq(lhs: &[f32], rhs: &[f32], what: &str) {
        assert_eq!(lhs.len(), rhs.len(), "{what}: length mismatch");
        for (i, (a, b)) in lhs.iter().zip(rhs).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{what}: bit mismatch at {i}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn exact_axpy_rounds_once_per_element() {
        let (x, y) = (data(300, 1), data(300, 2));
        let out = NativeBackend::exact().axpy(0.3, &x, &y);
        for i in 0..x.len() {
            let mut acc = WideAccumulator::new();
            acc.add_value(y[i]);
            acc.add_product(x[i], 0.3);
            assert_eq!(out[i].to_bits(), acc.round().to_bits());
        }
    }

    #[test]
    fn exact_gemm_matches_kulisch_dot() {
        let dims = GemmKernel { m: 5, k: 37, n: 4 };
        let a = data(5 * 37, 3);
        let b = data(37 * 4, 4);
        let out = NativeBackend::exact().gemm(&dims, &a, &b);
        for i in 0..5 {
            for j in 0..4 {
                let col: Vec<f32> = (0..37).map(|l| b[l * 4 + j]).collect();
                let want = reduce::dot_exact(&a[i * 37..(i + 1) * 37], &col);
                assert_eq!(out[i * 4 + j].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn fast_kernels_track_f64_reference() {
        let be = NativeBackend::fast();
        let dims = GemmKernel { m: 9, k: 33, n: 7 };
        let a = data(9 * 33, 5);
        let b = data(33 * 7, 6);
        let out = be.gemm(&dims, &a, &b);
        for i in 0..9 {
            for j in 0..7 {
                let want: f64 = (0..33)
                    .map(|l| f64::from(a[i * 33 + l]) * f64::from(b[l * 7 + j]))
                    .sum();
                assert!((f64::from(out[i * 7 + j]) - want).abs() < 1e-2);
            }
        }
        let grid = data(8 * 9, 7);
        let st = be.stencil2d(8, 9, &grid);
        for y in 0..6 {
            for x in 0..7 {
                let g = |yy: usize, xx: usize| f64::from(grid[yy * 9 + xx]);
                let want = g(y + 1, x) + g(y + 1, x + 2) + g(y, x + 1) + g(y + 2, x + 1)
                    - 4.0 * g(y + 1, x + 1);
                assert!((f64::from(st[y * 7 + x]) - want).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn banding_is_bit_identical_across_thread_counts() {
        // Large enough to clear PAR_MIN_ELEMS so threading engages.
        let dims = GemmKernel {
            m: 96,
            k: 40,
            n: 96,
        };
        let a = data(96 * 40, 8);
        let b = data(40 * 96, 9);
        let img = data(100 * 100, 10);
        let wgt = data(9 * 2, 11);
        let conv = Conv2dKernel {
            height: 100,
            width: 100,
            k: 3,
            filters: 2,
        };
        let grid = data(110 * 100, 12);
        let (x, y) = (data(10_000, 13), data(10_000, 14));
        for mode in [NativeMode::Fast, NativeMode::Exact] {
            let serial = NativeBackend::new(mode);
            let pooled = NativeBackend::new(mode).with_threads(4);
            assert_bits_eq(
                &serial.gemm(&dims, &a, &b),
                &pooled.gemm(&dims, &a, &b),
                "gemm",
            );
            assert_bits_eq(
                &serial.conv2d(&conv, &img, &wgt),
                &pooled.conv2d(&conv, &img, &wgt),
                "conv2d",
            );
            assert_bits_eq(
                &serial.stencil2d(110, 100, &grid),
                &pooled.stencil2d(110, 100, &grid),
                "stencil2d",
            );
            assert_bits_eq(&serial.axpy(1.5, &x, &y), &pooled.axpy(1.5, &x, &y), "axpy");
        }
    }

    #[test]
    fn output_shapes() {
        let be = NativeBackend::fast();
        let conv = Conv2dKernel {
            height: 10,
            width: 8,
            k: 3,
            filters: 4,
        };
        assert_eq!(
            be.conv2d(&conv, &data(80, 1), &data(36, 2)).len(),
            4 * 8 * 6
        );
        assert_eq!(be.stencil2d(5, 6, &data(30, 3)).len(), 3 * 4);
        let dims = GemmKernel { m: 3, k: 4, n: 2 };
        assert_eq!(be.gemm(&dims, &data(12, 4), &data(8, 5)).len(), 6);
    }
}
