//! Reduction primitives for the native backend.
//!
//! The fast path follows the shape of a software Kulisch substitute on
//! commodity hardware (SNIPPETS snippets 1–3): a floating-point add has
//! a 3–5 cycle latency, so a single running sum serializes the whole
//! reduction on that latency chain. Splitting the stream over
//! [`LANES`] independent partial sums lets the core retire one FMA per
//! issue slot (and lets the autovectorizer map the lane array onto a
//! SIMD register), then a log-depth tree combines the lanes at the
//! end. The result is *not* bit-identical to a sequential sum — the
//! exact path goes through [`ntx_fpu::WideAccumulator`] instead, which
//! is associativity-free by construction.

use ntx_fpu::WideAccumulator;

/// Number of independent partial-sum accumulators in the fast path.
///
/// Eight `f32` lanes fill one 256-bit vector register and comfortably
/// cover the FP-add latency×throughput product of current cores.
pub const LANES: usize = 8;

/// Combines the partial-sum lanes with a balanced binary tree
/// (pairwise adds, log₂ depth) instead of a left fold.
#[inline]
#[must_use]
pub fn tree_combine(lanes: [f32; LANES]) -> f32 {
    let a = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let b = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    a + b
}

/// Fast dot product: [`LANES`] round-robin partial sums over the
/// element stream, tree-combined at the end.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[must_use]
pub fn dot_fast(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot operands must have equal lengths");
    let mut acc = [0.0f32; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (cx, cy) in xc.by_ref().zip(yc.by_ref()) {
        for i in 0..LANES {
            acc[i] += cx[i] * cy[i];
        }
    }
    for (i, (&a, &b)) in xc.remainder().iter().zip(yc.remainder()).enumerate() {
        acc[i] += a * b;
    }
    tree_combine(acc)
}

/// Exact dot product: every product lands in the wide Kulisch
/// accumulator and is rounded to `f32` exactly once, independent of
/// accumulation order.
///
/// # Panics
/// Panics if `x` and `y` have different lengths.
#[must_use]
pub fn dot_exact(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot operands must have equal lengths");
    let mut acc = WideAccumulator::new();
    for (&a, &b) in x.iter().zip(y) {
        acc.add_product(a, b);
    }
    acc.round()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, mut seed: u32) -> Vec<f32> {
        (0..n)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 17;
                seed ^= seed << 5;
                ((seed % 257) as f32 - 128.0) / 7.0
            })
            .collect()
    }

    #[test]
    fn fast_dot_tracks_f64_reference() {
        for n in [0, 1, 7, 8, 9, 63, 4096] {
            let x = data(n, 0x11);
            let y = data(n, 0x22);
            let reference: f64 = x
                .iter()
                .zip(&y)
                .map(|(&a, &b)| f64::from(a) * f64::from(b))
                .sum();
            let got = f64::from(dot_fast(&x, &y));
            let scale: f64 = x.iter().map(|&a| f64::from(a).abs()).sum::<f64>() + 1.0;
            assert!(
                (got - reference).abs() <= 1e-3 * scale,
                "n={n}: fast dot {got} strayed from reference {reference}"
            );
        }
    }

    #[test]
    fn exact_dot_matches_order_permutation() {
        let x = data(129, 0x33);
        let y = data(129, 0x44);
        let forward = dot_exact(&x, &y);
        let rx: Vec<f32> = x.iter().rev().copied().collect();
        let ry: Vec<f32> = y.iter().rev().copied().collect();
        assert_eq!(
            forward.to_bits(),
            dot_exact(&rx, &ry).to_bits(),
            "Kulisch reduction must be order-independent"
        );
    }

    #[test]
    fn tree_combine_sums_all_lanes() {
        let lanes = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        assert_eq!(tree_combine(lanes), 255.0);
    }
}
