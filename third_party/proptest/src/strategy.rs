//! The `Strategy` trait, its combinators, and range/tuple instances.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Sampling returns `None` when a filter rejects the candidate; the
/// driver ([`sample_ok`]) retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one candidate, or `None` on a filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true.
    fn prop_filter<R, F>(self, _whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Maps through `f`, rejecting values mapped to `None`.
    fn prop_filter_map<R, O, F>(self, _whence: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// Draws from `strategy` until a candidate passes its filters.
///
/// # Panics
///
/// Panics after 10 000 consecutive rejections (degenerate filter).
pub fn sample_ok<S: Strategy>(strategy: &S, rng: &mut TestRng) -> S::Value {
    for _ in 0..10_000 {
        if let Some(v) = strategy.sample(rng) {
            return v;
        }
    }
    panic!("strategy rejected 10000 consecutive candidates");
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(&self.f)
    }
}

/// `prop_filter_map` adapter.
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let seed = self.inner.sample(rng)?;
        (self.f)(seed).sample(rng)
    }
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; at least one option is required.
    ///
    /// # Panics
    ///
    /// Panics on an empty option list.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }

    /// Boxes one arm (helper for the macro expansion).
    pub fn option<S>(strategy: S) -> BoxedStrategy<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(strategy)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = rng.below(span as u128) as i128;
                Some(((self.start as i128) + off) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = rng.below(span as u128) as i128;
                Some(((lo as i128) + off) as $t)
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
