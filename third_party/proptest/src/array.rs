//! `prop::array` — fixed-size arrays of one strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Array strategy of compile-time length `N`.
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(self.element.sample(rng)?);
        }
        match out.try_into() {
            Ok(arr) => Some(arr),
            Err(_) => unreachable!("length is N by construction"),
        }
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        /// `[T; N]` drawn from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fn!(
    uniform1 => 1, uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform7 => 7, uniform8 => 8
);
