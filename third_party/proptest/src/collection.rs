//! `prop::collection` — variable-length collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u128;
        let len = self.size.lo + rng.below(span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}
