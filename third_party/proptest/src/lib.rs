//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, implementing exactly the API surface this workspace uses.
//!
//! The container this repository builds in has no access to crates.io,
//! so the property-test suites link against this shim instead. It keeps
//! the same programming model — `Strategy` values composed with
//! `prop_map`/`prop_flat_map`/`prop_filter_map`, the `proptest!` macro,
//! `prop_oneof!`, `Just`, `any::<T>()` and the `prop::collection` /
//! `prop::array` helpers — backed by a deterministic xorshift PRNG.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated values unshrunk), no persistence of failing
//! seeds, and a smaller default case count. Strategies are sampled, not
//! explored, so the statistical coverage is comparable per case.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` path exposed by the real crate's prelude.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::option($strat)),+
        ])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(
                        let $pat =
                            $crate::strategy::sample_ok(&$strat, &mut rng);
                    )+
                    // Bodies may `return Ok(())` early like real proptest
                    // closures, so run them inside a Result closure.
                    #[allow(unreachable_code)]
                    let __result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __result {
                        panic!("property returned Err: {e}");
                    }
                }
            }
        )*
    };
}
