//! Deterministic test runner pieces: configuration and PRNG.

/// Subset of the real `ProptestConfig` used by this workspace.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic xorshift64* generator, seeded from the test name so
/// every test explores a distinct but reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        raw % bound
    }
}
