//! `any::<T>()` — full-range generation for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`, like `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u32())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}
