//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API surface this workspace uses:
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! It measures wall-clock time with `std::time::Instant` and prints a
//! single summary line per benchmark — no statistics, plots or HTML
//! reports — which is enough to compare runs by eye in an offline
//! container.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean/min sample time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!("{name:<44} mean {mean:>12.3?}   min {min:>12.3?}   ({n} samples)");
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one warm-up call plus `sample_size` samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group function, either form the real crate
/// accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
