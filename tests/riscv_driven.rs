//! Integration tests of the §II-E software stack: RV32IMC control
//! programs — assembled with the built-in assembler and interpreted by
//! the core model — driving the NTX register windows and the DMA over
//! the cluster bus.

use ntx::isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect, RegFile, RegOffset};
use ntx::riscv::{reg, Assembler, Cpu, Trap};
use ntx::sim::{map, Cluster, ClusterConfig};

/// Emits the register writes that program `cfg` into the NTX window at
/// `base` (command last), mirroring what a bare-metal driver does.
fn emit_offload(asm: &mut Assembler, base: u32, cfg: &NtxConfig) {
    let mut image = RegFile::new();
    image.load_config(cfg);
    asm.la(reg::T0, base);
    for off in (0..ntx::isa::NTX_REGFILE_BYTES).step_by(4) {
        if off == RegOffset::COMMAND || off == RegOffset::STATUS {
            continue;
        }
        let v = image.read(off, false).expect("valid offset");
        asm.li(reg::T1, v as i32);
        asm.sw(reg::T1, reg::T0, off as i32);
    }
    asm.li(reg::T1, cfg.command.encode() as i32);
    asm.sw(reg::T1, reg::T0, RegOffset::COMMAND as i32);
}

/// Emits a busy-wait on the NTX status register at `base`.
fn emit_wait_idle(asm: &mut Assembler, base: u32) {
    asm.la(reg::T0, base);
    let poll = asm.new_label();
    asm.bind(poll);
    asm.lw(reg::T2, reg::T0, RegOffset::STATUS as i32);
    asm.bnez(reg::T2, poll);
}

#[test]
fn program_offloads_reduction_and_polls_status() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let n = 24u32;
    let x: Vec<f32> = (0..n).map(|i| 0.25 * i as f32).collect();
    cluster.write_tcdm_f32(0, &x);
    let cfg = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(n))
        .agu(0, AguConfig::stream(0, 4))
        .agu(1, AguConfig::stream(0, 4))
        .agu(2, AguConfig::fixed(0x1000))
        .build()
        .unwrap();
    let mut asm = Assembler::new(map::L2_BASE);
    emit_offload(&mut asm, map::NTX_BASE, &cfg);
    emit_wait_idle(&mut asm, map::NTX_BASE);
    asm.ebreak();
    cluster.load_program(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(map::L2_BASE);
    assert_eq!(cluster.run_program(&mut cpu, 100_000), Some(Trap::Ebreak));
    let expect: f64 = x.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
    let got = f64::from(cluster.read_tcdm_f32(0x1000, 1)[0]);
    assert!((got - expect).abs() < 1e-3, "{got} vs {expect}");
}

#[test]
fn program_drives_dma_descriptor_block() {
    // The program copies data from external memory into the TCDM via
    // the DMA registers, waits on DMA_STATUS, then checks a word.
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster
        .ext_mem()
        .write_f32_slice(0x4000, &[1.5, 2.5, 3.5, 4.5]);
    let mut asm = Assembler::new(map::L2_BASE);
    asm.la(reg::T0, map::DMA_BASE);
    let fields = [
        (map::DMA_EXT_LO, 0x4000u32),
        (map::DMA_EXT_HI, 0),
        (map::DMA_TCDM, 0x2000),
        (map::DMA_ROW_BYTES, 16),
        (map::DMA_ROWS, 1),
        (map::DMA_EXT_STRIDE, 16),
        (map::DMA_TCDM_STRIDE, 16),
    ];
    for (off, v) in fields {
        asm.li(reg::T1, v as i32);
        asm.sw(reg::T1, reg::T0, off as i32);
    }
    asm.li(reg::T1, 0); // direction: ext -> TCDM, start
    asm.sw(reg::T1, reg::T0, map::DMA_START as i32);
    let poll = asm.new_label();
    asm.bind(poll);
    asm.lw(reg::T2, reg::T0, map::DMA_STATUS as i32);
    asm.bnez(reg::T2, poll);
    // Load the third word into a0.
    asm.li(reg::T3, 0x2008);
    asm.lw(reg::A0, reg::T3, 0);
    asm.ebreak();
    cluster.load_program(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(map::L2_BASE);
    assert_eq!(cluster.run_program(&mut cpu, 100_000), Some(Trap::Ebreak));
    assert_eq!(f32::from_bits(cpu.reg(reg::A0)), 3.5);
    assert_eq!(cluster.read_tcdm_f32(0x2000, 4), vec![1.5, 2.5, 3.5, 4.5]);
}

#[test]
fn broadcast_alias_reaches_all_engines_from_software() {
    // Writing the broadcast window once must start all 8 engines.
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.write_tcdm_f32(0, &[2.0, 3.0]);
    cluster.write_tcdm_f32(0x100, &[4.0, 5.0]);
    let cfg = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(2))
        .agu(0, AguConfig::stream(0, 4))
        .agu(1, AguConfig::stream(0x100, 4))
        .agu(2, AguConfig::fixed(0x200))
        .build()
        .unwrap();
    let mut asm = Assembler::new(map::L2_BASE);
    emit_offload(&mut asm, map::NTX_BROADCAST, &cfg);
    emit_wait_idle(&mut asm, map::NTX_BASE); // engine 0 is representative
    asm.ebreak();
    cluster.load_program(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(map::L2_BASE);
    assert_eq!(cluster.run_program(&mut cpu, 200_000), Some(Trap::Ebreak));
    cluster.run_to_completion(); // drain the other engines
    assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 2.0 * 4.0 + 3.0 * 5.0);
    assert_eq!(cluster.perf().commands_completed, 8);
}

#[test]
fn double_buffered_offload_from_software() {
    // Two back-to-back commands: the second is staged while the first
    // runs (the §II-E double buffer); no status poll in between.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let x: Vec<f32> = (1..=16).map(|i| i as f32).collect();
    cluster.write_tcdm_f32(0, &x);
    let make = |out: u32| {
        NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(16))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(out))
            .build()
            .unwrap()
    };
    let mut asm = Assembler::new(map::L2_BASE);
    emit_offload(&mut asm, map::NTX_BASE, &make(0x300));
    emit_offload(&mut asm, map::NTX_BASE, &make(0x304)); // staged
    emit_wait_idle(&mut asm, map::NTX_BASE);
    asm.ebreak();
    cluster.load_program(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(map::L2_BASE);
    assert_eq!(cluster.run_program(&mut cpu, 200_000), Some(Trap::Ebreak));
    let expect: f64 = x.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
    for addr in [0x300u32, 0x304] {
        let got = f64::from(cluster.read_tcdm_f32(addr, 1)[0]);
        assert!((got - expect).abs() < 1e-3);
    }
}

#[test]
fn core_and_engines_share_the_tcdm() {
    // The core writes operands through the bus while an engine works,
    // then reads the engine's result back through the bus.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let mut asm = Assembler::new(map::L2_BASE);
    // Store 3.0 and 4.0 (bit patterns via li) to TCDM 0x40/0x44.
    asm.li(reg::T1, 3.0f32.to_bits() as i32);
    asm.li(reg::T2, 0x40);
    asm.sw(reg::T1, reg::T2, 0);
    asm.li(reg::T1, 4.0f32.to_bits() as i32);
    asm.sw(reg::T1, reg::T2, 4);
    // Offload MUL elementwise (2 elements) producing 0x80.
    let cfg = NtxConfig::builder()
        .command(Command::Mul {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::elementwise(2))
        .agu(0, AguConfig::stream(0x40, 4))
        .agu(1, AguConfig::stream(0x40, 4))
        .agu(2, AguConfig::stream(0x80, 4))
        .build()
        .unwrap();
    emit_offload(&mut asm, map::NTX_BASE, &cfg);
    emit_wait_idle(&mut asm, map::NTX_BASE);
    asm.li(reg::T3, 0x80);
    asm.lw(reg::A0, reg::T3, 0);
    asm.lw(reg::A1, reg::T3, 4);
    asm.ebreak();
    cluster.load_program(0, &asm.assemble().unwrap());
    let mut cpu = Cpu::new(map::L2_BASE);
    assert_eq!(cluster.run_program(&mut cpu, 200_000), Some(Trap::Ebreak));
    assert_eq!(f32::from_bits(cpu.reg(reg::A0)), 9.0);
    assert_eq!(f32::from_bits(cpu.reg(reg::A1)), 16.0);
}
