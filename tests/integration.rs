//! Cross-crate integration tests: full pipelines spanning the ISA, the
//! memory system, the cycle simulator, the kernel library and the
//! models.

use ntx::isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
use ntx::kernels::blas::{AxpyKernel, GemmKernel, GemvKernel};
use ntx::kernels::conv::Conv2dKernel;
use ntx::kernels::reference;
use ntx::kernels::schedule::{axpy_tiles, conv_tiles, run_tiles, write_replicated_weights};
use ntx::mem::{DmaDescriptor, DmaDirection};
use ntx::sim::{Cluster, ClusterConfig};

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) - 0.5
        })
        .collect()
}

fn assert_close(got: &[f32], expect: &[f32], tol: f32) {
    assert_eq!(got.len(), expect.len());
    for (i, (g, e)) in got.iter().zip(expect).enumerate() {
        assert!(
            (g - e).abs() <= tol * e.abs().max(1.0),
            "element {i}: {g} vs {e}"
        );
    }
}

#[test]
fn streaming_conv_pipeline_end_to_end() {
    // External image -> DMA -> TCDM -> 8 NTX -> DMA -> external output,
    // with double buffering; verified against the f64 reference.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let kernel = Conv2dKernel {
        height: 30,
        width: 21,
        k: 3,
        filters: 3,
    };
    let img = data((kernel.height * kernel.width) as usize, 11);
    let w = data(9 * 3, 22);
    cluster.ext_mem().write_f32_slice(0, &img);
    write_replicated_weights(&mut cluster, 0, &w);
    let tiles = conv_tiles(&cluster, &kernel, 0, 0, 0x20_0000, 7);
    let perf = run_tiles(&mut cluster, &tiles);
    let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
    let got = cluster.ext_mem().read_f32_slice(0x20_0000, oh * ow * 3);
    for f in 0..3usize {
        let expect = reference::conv2d(&img, 30, 21, &w[f * 9..(f + 1) * 9], 3);
        assert_close(&got[f * oh * ow..(f + 1) * oh * ow], &expect, 1e-4);
    }
    // The pipeline must overlap: dma busy cycles and compute cycles
    // both well below the total.
    assert!(perf.dma_busy_cycles < perf.cycles);
    assert!(perf.flops > 0);
}

#[test]
fn mixed_workload_all_engines_different_commands() {
    // Every engine runs a different command family concurrently.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let n = 40u32;
    let xs = data(n as usize, 1);
    cluster.write_tcdm_f32(0x0000, &xs);
    let commands: Vec<NtxConfig> = vec![
        // 0: dot product with itself.
        NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x4000))
            .build()
            .unwrap(),
        // 1: relu.
        NtxConfig::builder()
            .command(Command::Relu)
            .loops(LoopNest::elementwise(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x4100, 4))
            .build()
            .unwrap(),
        // 2: scale by 2 (Mul with register).
        NtxConfig::builder()
            .command(Command::Mul {
                operand: OperandSelect::Register,
            })
            .register(2.0)
            .loops(LoopNest::elementwise(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x4300, 4))
            .build()
            .unwrap(),
        // 3: min reduction.
        NtxConfig::builder()
            .command(Command::Min)
            .loops(LoopNest::vector(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x4500))
            .build()
            .unwrap(),
        // 4: argmin.
        NtxConfig::builder()
            .command(Command::ArgMin)
            .loops(LoopNest::vector(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x4504))
            .build()
            .unwrap(),
        // 5: memset.
        NtxConfig::builder()
            .command(Command::Set)
            .register(-1.25)
            .loops(LoopNest::elementwise(n))
            .agu(2, AguConfig::stream(0x4600, 4))
            .build()
            .unwrap(),
        // 6: memcpy.
        NtxConfig::builder()
            .command(Command::Copy)
            .loops(LoopNest::elementwise(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x4800, 4))
            .build()
            .unwrap(),
        // 7: threshold-mask: out = (x > 0) ? x : 0 (y stream = x).
        NtxConfig::builder()
            .command(Command::ThresholdMask)
            .register(0.0)
            .loops(LoopNest::elementwise(n))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0, 4))
            .agu(2, AguConfig::stream(0x4a00, 4))
            .build()
            .unwrap(),
    ];
    for (i, cfg) in commands.iter().enumerate() {
        cluster.offload_with_writes(i, cfg, 4);
    }
    cluster.run_to_completion();

    // Verify every engine's result.
    let dot: f64 = xs.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
    assert!((f64::from(cluster.read_tcdm_f32(0x4000, 1)[0]) - dot).abs() < 1e-3);
    // Bulk readbacks go through the slice API (no per-call Vec).
    let mut relu = vec![0f32; n as usize];
    cluster.read_tcdm_into(0x4100, &mut relu);
    for (r, &x) in relu.iter().zip(&xs) {
        assert_eq!(*r, if x > 0.0 { x } else { 0.0 });
    }
    let mut scaled = vec![0f32; n as usize];
    cluster.read_tcdm_into(0x4300, &mut scaled);
    for (s, &x) in scaled.iter().zip(&xs) {
        assert_eq!(*s, 2.0 * x);
    }
    let min = xs.iter().copied().fold(f32::INFINITY, f32::min);
    assert_eq!(cluster.read_tcdm_f32(0x4500, 1)[0], min);
    let argmin = xs
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .unwrap()
        .0 as u32;
    assert_eq!(cluster.read_tcdm_f32(0x4504, 1)[0].to_bits(), argmin);
    for v in cluster.read_tcdm_f32(0x4600, n as usize) {
        assert_eq!(v, -1.25);
    }
    assert_eq!(cluster.read_tcdm_f32(0x4800, n as usize), xs);
    let masked = cluster.read_tcdm_f32(0x4a00, n as usize);
    for (m, &x) in masked.iter().zip(&xs) {
        assert_eq!(*m, if x > 0.0 { x } else { 0.0 });
    }
}

#[test]
fn blas_kernels_against_references_on_one_cluster() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    // Re-use one cluster across kernels (counters accumulate; results
    // must stay correct regardless).
    let x = data(200, 5);
    let y = data(200, 6);
    let (got, _) = AxpyKernel { n: 200, a: -0.75 }.run(&mut cluster, &x, &y);
    let mut expect = y.clone();
    reference::axpy(-0.75, &x, &mut expect);
    assert_close(&got, &expect, 1e-5);

    let a = data(24 * 36, 7);
    let v = data(36, 8);
    let (got, _) = GemvKernel { rows: 24, cols: 36 }.run(&mut cluster, &a, &v);
    assert_close(&got, &reference::gemv(&a, &v, 24, 36), 1e-4);

    let b = data(36 * 20, 9);
    let a2 = data(28 * 36, 10);
    let (got, _) = GemmKernel {
        m: 28,
        k: 36,
        n: 20,
    }
    .run(&mut cluster, &a2, &b);
    assert_close(&got, &reference::gemm(&a2, &b, 28, 36, 20), 1e-4);
}

#[test]
fn dma_roundtrip_preserves_data_under_compute_load() {
    // DMA in, compute on half the engines, DMA out — all concurrent.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let payload = data(2048, 42);
    cluster.ext_mem().write_f32_slice(0x8000, &payload);
    cluster.dma_push(DmaDescriptor::linear(
        0x8000,
        0x6000,
        4 * 2048,
        DmaDirection::ExtToTcdm,
    ));
    // Busy-work on engines 0..4.
    cluster.write_tcdm_f32(0, &data(256, 43));
    for e in 0..4 {
        let cfg = NtxConfig::builder()
            .command(Command::Mac {
                operand: OperandSelect::Memory,
            })
            .loops(LoopNest::vector(256))
            .agu(0, AguConfig::stream(0, 4))
            .agu(1, AguConfig::stream(0, 4))
            .agu(2, AguConfig::fixed(0x400 + 4 * e as u32))
            .build()
            .unwrap();
        cluster.offload_with_writes(e, &cfg, 2);
    }
    cluster.run_to_completion();
    cluster.dma_push(DmaDescriptor::linear(
        0x10_0000,
        0x6000,
        4 * 2048,
        DmaDirection::TcdmToExt,
    ));
    cluster.run_to_completion();
    assert_eq!(cluster.ext_mem().read_f32_slice(0x10_0000, 2048), payload);
}

#[test]
fn axpy_streaming_is_bandwidth_bound() {
    // The end-to-end streaming AXPY must land within 15 % of the
    // practical (conflict-derated) bandwidth roof — the Fig. 5 claim
    // for regular memory-bound kernels.
    let n = 16_384u32;
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.ext_mem().write_f32_slice(0, &data(n as usize, 1));
    cluster
        .ext_mem()
        .write_f32_slice(0x100_0000, &data(n as usize, 2));
    let tiles = axpy_tiles(&cluster, n, 3.0, 0, 0x100_0000, 2048);
    let perf = run_tiles(&mut cluster, &tiles);
    let achieved = perf.flops_per_second(1.25e9);
    let oi = AxpyKernel { n, a: 3.0 }.cost().operational_intensity();
    let roof = 5.0e9 * oi;
    assert!(
        achieved > 0.80 * roof,
        "streaming AXPY at {:.2} Gflop/s, roof {:.2}",
        achieved / 1e9,
        roof / 1e9
    );
}

#[test]
fn perf_counters_are_consistent() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let x = data(512, 3);
    let y = data(512, 4);
    let (_, perf) = AxpyKernel { n: 512, a: 1.0 }.run(&mut cluster, &x, &y);
    // Each element: 1 MAC = 2 flops.
    assert_eq!(perf.flops, 1024);
    // Reads: x + y-init; writes: y.
    assert_eq!(perf.tcdm_reads, 1024);
    assert_eq!(perf.tcdm_writes, 512);
    // Conflicts only ever deny requests, never grant more than issued.
    assert!(perf.tcdm_conflicts <= perf.tcdm_requests);
    assert!(perf.ntx_active_cycles + perf.ntx_stall_cycles >= perf.ntx_active_cycles);
}

#[test]
fn serving_stack_end_to_end_through_the_facade() {
    // Submit a simulated job and an analytical estimate through the
    // async server, from a second client thread, and verify both
    // deliveries plus the final serving report.
    use ntx::sched::{Server, ServerConfig};
    let server = Server::start(ServerConfig::with_clusters(2));
    let session = server.session();
    let client = std::thread::spawn(move || {
        session
            .job("gemm")
            .gemm(
                GemmKernel {
                    m: 16,
                    k: 16,
                    n: 16,
                },
                vec![1.0; 256],
                vec![0.5; 256],
            )
            .submit()
            .expect("server running")
    });
    let estimate = server
        .session()
        .job("axpy estimate")
        .axpy(2.0, data(65536, 5), data(65536, 6))
        .estimate()
        .submit()
        .expect("server running");
    let gemm = client
        .join()
        .expect("client thread")
        .wait()
        .expect("served");
    let r = gemm.result.expect("valid gemm");
    assert_eq!(r.output[0], 8.0); // 16 * 1.0 * 0.5
    let e = estimate.wait().expect("served").result.expect("valid job");
    let est = e.estimate.expect("estimate attached");
    assert!(est.cycles > 0 && !est.compute_bound);
    let report = server.shutdown();
    assert_eq!(report.jobs, 2);
    assert_eq!(report.simulated, 1);
    assert_eq!(report.estimated, 1);
}
