//! # NTX — streaming accelerator reproduction
//!
//! Facade crate re-exporting the whole NTX reproduction workspace:
//! a cycle-approximate simulator and analytical evaluation models of the
//! NTX floating-point streaming co-processor cluster (Schuiki et al.,
//! DATE 2019).
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`cpu`] | Native host-CPU execution: multi-accumulator fast mode, bit-exact Kulisch mode |
//! | [`fpu`] | Wide (PCS/Kulisch) accumulator, comparator, FPU datapath |
//! | [`isa`] | NTX command set, loop/AGU descriptors, register file |
//! | [`mem`] | TCDM banks, logarithmic interconnect, DMA, external memory |
//! | [`riscv`] | RV32IMC control-core interpreter and assembler |
//! | [`sim`] | The processing-cluster cycle simulator |
//! | [`kernels`] | BLAS / convolution / stencil kernels lowered to NTX |
//! | [`dnn`] | DNN workload models (AlexNet … ResNet-152) |
//! | [`model`] | Roofline, power/area/technology models, paper tables |
//! | [`sched`] | Scale-out serving stack: job queue, backends (simulate/estimate/native), pipelined cluster farm, async server |
//!
//! # Quickstart
//!
//! ```
//! use ntx::sim::{Cluster, ClusterConfig};
//! use ntx::isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
//!
//! // Build a cluster, place two vectors in the TCDM, and run a dot
//! // product on NTX 0.
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let x = [1.0f32, 2.0, 3.0, 4.0];
//! let y = [4.0f32, 3.0, 2.0, 1.0];
//! cluster.write_tcdm_f32(0x000, &x);
//! cluster.write_tcdm_f32(0x100, &y);
//!
//! let cfg = NtxConfig::builder()
//!     .command(Command::Mac { operand: OperandSelect::Memory })
//!     .loops(LoopNest::vector(x.len() as u32))
//!     .agu(0, AguConfig::stream(0x000, 4))
//!     .agu(1, AguConfig::stream(0x100, 4))
//!     .agu(2, AguConfig::fixed(0x200))
//!     .build()
//!     .expect("valid NTX configuration");
//! cluster.offload(0, &cfg);
//! cluster.run_to_completion();
//!
//! assert_eq!(cluster.read_tcdm_f32(0x200, 1)[0], 20.0);
//! ```

#![forbid(unsafe_code)]

pub use ntx_cpu as cpu;
pub use ntx_dnn as dnn;
pub use ntx_fpu as fpu;
pub use ntx_isa as isa;
pub use ntx_kernels as kernels;
pub use ntx_mem as mem;
pub use ntx_model as model;
pub use ntx_riscv as riscv;
pub use ntx_sched as sched;
pub use ntx_sim as sim;
