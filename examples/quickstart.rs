//! Quickstart: configure one NTX co-processor and run two commands.
//!
//! Shows the essentials of the programming model: place data in the
//! TCDM, describe a loop nest + AGU walk, offload, and read back.
//!
//! Run with `cargo run --example quickstart`.

use ntx::isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect};
use ntx::sim::{Cluster, ClusterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // A dot product: x · y over 64 elements on NTX 0.
    let n = 64u32;
    let x: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
    let y: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
    cluster.write_tcdm_f32(0x0000, &x);
    cluster.write_tcdm_f32(0x1000, &y);

    let dot = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(n))
        .agu(0, AguConfig::stream(0x0000, 4))
        .agu(1, AguConfig::stream(0x1000, 4))
        .agu(2, AguConfig::fixed(0x2000))
        .build()?;
    cluster.offload(0, &dot);

    // Meanwhile NTX 1 finds the argmax of x — the commands overlap.
    let argmax = NtxConfig::builder()
        .command(Command::ArgMax)
        .loops(LoopNest::vector(n))
        .agu(0, AguConfig::stream(0x0000, 4))
        .agu(2, AguConfig::fixed(0x2004))
        .build()?;
    cluster.offload(1, &argmax);

    let cycles = cluster.run_to_completion();

    let result = cluster.read_tcdm_f32(0x2000, 1)[0];
    let reference: f64 = x
        .iter()
        .zip(&y)
        .map(|(&a, &b)| f64::from(a) * f64::from(b))
        .sum();
    println!("dot(x, y)      = {result}  (f64 reference {reference:.6})");

    let idx = cluster.read_tcdm_f32(0x2004, 1)[0].to_bits();
    println!(
        "argmax(x)      = index {idx} (x[{idx}] = {})",
        x[idx as usize]
    );

    let perf = cluster.perf();
    println!("cycles         = {cycles}");
    println!(
        "flops          = {} ({:.2} flop/cycle of the 16 peak)",
        perf.flops,
        perf.flops_per_cycle()
    );
    println!(
        "TCDM conflicts = {:.1} %",
        perf.conflict_probability() * 100.0
    );
    Ok(())
}
