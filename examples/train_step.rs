//! Train step: a whole network's training step served as one job DAG.
//!
//! `ntx_dnn::compile` lowers every compute layer of AlexNet to im2col
//! GEMMs — forward, backward-by-data, backward-by-weights — linked by
//! dependency edges that follow the data. This demo submits the whole
//! step to the continuous server through one [`Session`]: each op is a
//! `.gemm(..)` job chained with `.after_id(..)` to its predecessors,
//! and the server admits each op the event its last predecessor
//! retires — the two backward ops of a layer run concurrently, and
//! independent branches overlap on the four-cluster farm.
//!
//! The same DAG then runs again on the bit-exact native backend
//! (`.native_exact()`), and the demo checks every op's output against
//! the simulated bits: with every reduction through the Kulisch
//! accumulator, backends may change wall-clock, never a bit.
//!
//! Full-size ImageNet layers are far too large for a cycle-accurate
//! run, so dimensions are capped (`TrainingStep::scaled`) while the
//! DAG shape — the thing being served — stays exactly AlexNet's.
//!
//! Run with `cargo run --release --example train_step`.

use ntx::dnn::{compile, networks};
use ntx::sched::{BackendKind, Server, ServerConfig};
use std::sync::{Arc, Mutex};

/// Runs the compiled step as one job DAG and returns per-op outputs
/// plus the completion order.
fn run_dag(
    step: &ntx::dnn::TrainingStep,
    backend: BackendKind,
) -> (Vec<Vec<f32>>, Vec<usize>, ntx::sched::ServingReport) {
    let server = Server::start(ServerConfig::with_clusters(4));
    let session = server.session();
    let n = step.ops.len();
    let outputs = Arc::new(Mutex::new(vec![Vec::new(); n]));
    let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let mut ids = Vec::with_capacity(n);
    for (i, op) in step.ops.iter().enumerate() {
        let (a, b) = op.gemm_data(i as u32);
        let mut job = session.job(&op.name).gemm(op.dims, a, b).backend(backend);
        for &d in &op.deps {
            job = job.after_id(ids[d]);
        }
        let (outs, ord) = (Arc::clone(&outputs), Arc::clone(&order));
        let id = job
            .submit_callback(move |c| {
                let r = c.result.expect("op completes");
                outs.lock().unwrap()[i] = r.output;
                ord.lock().unwrap().push(i);
            })
            .expect("server running");
        ids.push(id);
    }
    let report = server.shutdown();
    let outputs = outputs.lock().unwrap().clone();
    let order = order.lock().unwrap().clone();
    (outputs, order, report)
}

fn main() {
    let net = networks::alexnet();
    let step = compile::training_step(&net, 64).scaled(48);
    println!(
        "AlexNet training step: {} GEMM ops (fwd/bwd-d/bwd-w), dims capped to 48",
        step.ops.len()
    );

    let (sim, order, report) = run_dag(&step, BackendKind::Simulate);
    println!(
        "  simulator    : {} jobs, makespan {} cycles, wall {:.0} ms",
        report.jobs,
        report.makespan_cycles,
        report.wall_seconds * 1e3
    );
    // The completion order is a topological order of the DAG: every op
    // retired only after all its predecessors.
    let mut pos = vec![0usize; step.ops.len()];
    for (p, &i) in order.iter().enumerate() {
        pos[i] = p;
    }
    let topological = step
        .ops
        .iter()
        .enumerate()
        .all(|(i, op)| op.deps.iter().all(|&d| pos[d] < pos[i]));
    println!("  completion order topological: {topological}");
    assert!(topological);

    let (native, _, nreport) = run_dag(&step, BackendKind::NativeExact);
    let identical = sim.iter().zip(&native).all(|(s, x)| {
        s.len() == x.len() && s.iter().zip(x).all(|(a, b)| a.to_bits() == b.to_bits())
    });
    println!(
        "  native-exact : {} jobs, wall {:.0} ms, outputs bit-identical to simulator: {}",
        nreport.jobs,
        nreport.wall_seconds * 1e3,
        identical
    );
    assert!(identical);

    // A taste of the DAG: the last layer's two backward ops share the
    // incoming gradient but not an edge between them — they overlap.
    for op in step.ops.iter().rev().take(3) {
        println!("    {:<14} deps {:?}", op.name, op.deps);
    }
}
