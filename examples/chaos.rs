//! Chaos: fault injection, backpressure, and load shedding.
//!
//! Demonstrates the robustness layer of the `ntx-sched` serving
//! stack: the server runs a four-cluster farm under a seeded
//! [`ntx::sched::FaultPlan`] that kills one cluster mid-run and
//! injects transient stalls, while clients push against a bounded
//! admission queue. Overload surfaces explicitly — `submit` returns
//! `Backpressure` when the queue is full (clients fall back to the
//! blocking `submit_wait`), and a job whose cycle deadline cannot be
//! met is shed up front with `DeadlineUnmeetable` instead of
//! occupying the farm. Every submitted job gets an explicit outcome;
//! the kill loses none of them, and the shutdown report tallies
//! faults injected, shards re-placed, stall cycles, backpressure
//! rejections, and shed jobs.
//!
//! Run with `cargo run --release --example chaos`.

use ntx::sched::{FaultPlan, SchedError, Server, ServerConfig};

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

fn main() {
    // Kill cluster 1 at cycle 400 and stall survivors now and then —
    // deterministically, from the seed alone.
    let faults = FaultPlan::NONE
        .with_seed(7)
        .with_kill(1, 400)
        .with_stalls(256, 1 << 13, 48);
    let server = Server::start(
        ServerConfig::with_clusters(4)
            .with_queue_limit(3)
            .with_faults(faults),
    );
    let session = server.session();

    // Push 8 jobs through a 3-slot queue: `submit` either takes the
    // slot or reports Backpressure, and the client falls back to the
    // blocking `submit_wait`.
    let mut handles = Vec::new();
    let mut backpressured = 0u32;
    for i in 0..8u32 {
        let build = |label: &str| {
            session
                .job(label)
                .axpy(1.5, data(20_000, i + 1), data(20_000, i + 101))
        };
        let handle = match build(&format!("axpy[{i}]")).submit() {
            Ok(h) => h,
            Err(SchedError::Backpressure { .. }) => {
                backpressured += 1;
                build(&format!("axpy[{i}] (waited)"))
                    .submit_wait()
                    .expect("server running")
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        };
        handles.push(handle);
    }

    // An impossible cycle budget is shed on admission, before it can
    // occupy the degraded farm (submit_wait: the queue is still full).
    let shed = session
        .job("axpy (1-cycle budget)")
        .axpy(2.0, data(4096, 0xd1), data(4096, 0xd2))
        .deadline_cycles(1)
        .submit_wait()
        .and_then(|h| h.wait())
        .map(|done| done.result.map(|_| ()));
    println!("chaos demo: 8 jobs + 1 doomed deadline on a 4-cluster farm, kill at cycle 400");
    match shed {
        Ok(Err(SchedError::DeadlineUnmeetable {
            estimated_cycles,
            deadline_cycles,
        })) => println!(
            "  shed up front: estimated {estimated_cycles} cycles > {deadline_cycles}-cycle budget"
        ),
        other => panic!("expected DeadlineUnmeetable, got {other:?}"),
    }

    // Despite the kill, every job completes with valid output bits.
    for h in handles {
        let done = h.wait().expect("served");
        let r = done.result.expect("valid job");
        assert_eq!(r.output.len(), 20_000);
        println!(
            "  {:<20} {:>7} cycles on the farm ({} outputs)",
            r.label,
            r.report.makespan_cycles,
            r.output.len()
        );
    }

    let report = server.shutdown();
    println!(
        "  survived: {} faults injected, {} shards re-placed, {} stall cycles; \
         {} backpressure rejections ({} observed), {} shed, {} served",
        report.faults_injected,
        report.shards_retried,
        report.fault_stall_cycles,
        report.backpressure_rejected,
        backpressured,
        report.shed_jobs,
        report.simulated
    );
    assert!(report.faults_injected > 0, "the chaos plan never fired");
    assert_eq!(report.shed_jobs, 1);
    assert_eq!(report.backpressure_rejected as u32, backpressured);
}
