//! Serve: many clients, one always-on cluster farm.
//!
//! Demonstrates the `ntx-sched` serving stack: three client threads
//! hold cloned [`ntx::sched::Session`]s on the async server and build
//! a mix of GEMM / convolution / AXPY / stencil jobs (plus an instant
//! analytical estimate) with the fluent `JobBuilder`; the worker
//! admits each job into the *running* four-cluster farm the moment it
//! arrives (continuous admission — no wave batching), places it on the
//! least-loaded clusters using measured-duration feedback, and
//! delivers completions through handles and callbacks as each job's
//! last shard retires.
//!
//! The demo then runs twice — serial farm, then a 4-thread worker
//! pool ([`ServerConfig::with_worker_threads`]) — and prints the
//! measured wall-clock speedup: pool workers step the clusters
//! speculatively while the merge front keeps every output and retire
//! event bit-identical to the serial farm.
//!
//! Run with `cargo run --release --example serve`.

use ntx::kernels::blas::GemmKernel;
use ntx::kernels::conv::Conv2dKernel;
use ntx::sched::{Server, ServerConfig, Session};
use std::time::Duration;

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Each client builds and submits its jobs through its own session.
fn run_client(session: &Session, client: u32) -> Vec<ntx::sched::JobHandle> {
    let deadline = Duration::from_secs(60);
    match client {
        0 => vec![
            session
                .job("conv3x3 66x63x4")
                .conv2d(
                    Conv2dKernel {
                        height: 66,
                        width: 63,
                        k: 3,
                        filters: 4,
                    },
                    data(66 * 63, 0xa1),
                    data(9 * 4, 0xa2),
                )
                .priority(2)
                .deadline(deadline)
                .submit()
                .expect("server running"),
            session
                .job("axpy 4096")
                .axpy(2.0, data(4096, 0xa3), data(4096, 0xa4))
                .deadline(deadline)
                .submit()
                .expect("server running"),
        ],
        1 => vec![
            session
                .job("gemm 48x32x24")
                .gemm(
                    GemmKernel {
                        m: 48,
                        k: 32,
                        n: 24,
                    },
                    data(48 * 32, 0xb1),
                    data(32 * 24, 0xb2),
                )
                .priority(1)
                .deadline(deadline)
                .submit()
                .expect("server running"),
            session
                .job("stencil 60x33")
                .stencil2d(60, 33, data(60 * 33, 0xb3))
                .deadline(deadline)
                .submit()
                .expect("server running"),
        ],
        _ => vec![session
            .job("gemm 512x512x512 (estimate)")
            .gemm(
                GemmKernel {
                    m: 512,
                    k: 512,
                    n: 512,
                },
                data(512 * 512, 0xc1),
                data(512 * 512, 0xc2),
            )
            .estimate()
            .priority(3)
            .submit()
            .expect("server running")],
    }
}

fn main() {
    // First pass: the serial farm (worker_threads = 1); second pass:
    // a 4-thread worker pool. Same jobs, same simulated cycles —
    // only the wall clock changes.
    let serial_jps = run_demo(1, true);
    let pooled_jps = run_demo(4, false);
    if serial_jps > 0.0 && pooled_jps > 0.0 {
        println!(
            "  worker pool: {:.1} jobs/s serial vs {:.1} jobs/s on 4 threads \
             ({:.2}x wall-clock speedup, outputs bit-identical by construction)",
            serial_jps,
            pooled_jps,
            pooled_jps / serial_jps
        );
    }
}

/// Runs the whole client mix on a farm with `threads` pool workers
/// and returns the measured wall-clock jobs/s.
fn run_demo(threads: usize, verbose: bool) -> f64 {
    let server = Server::start(ServerConfig::with_clusters(4).with_worker_threads(threads));

    // A callback completion: fired on the worker thread.
    let (cb_tx, cb_rx) = std::sync::mpsc::channel();
    server
        .session()
        .job("axpy 1000 (callback)")
        .axpy(0.5, data(1000, 0xd1), data(1000, 0xd2))
        .submit_callback(move |completion| drop(cb_tx.send(completion)))
        .expect("server running");

    // Three clients submit concurrently through cloned sessions.
    let mut clients = Vec::new();
    for c in 0..3u32 {
        let session = server.session();
        clients.push(std::thread::spawn(move || {
            run_client(&session, c)
                .into_iter()
                .map(|h| h.wait().expect("served"))
                .collect::<Vec<_>>()
        }));
    }

    println!(
        "serve demo: 3 clients + 1 callback on a 4-cluster continuous farm \
         ({threads} pool thread{})",
        if threads == 1 { "" } else { "s" }
    );
    for (c, t) in clients.into_iter().enumerate() {
        for done in t.join().expect("client thread") {
            let r = done.result.expect("valid job");
            if verbose {
                match r.estimate {
                    Some(e) => println!(
                        "  client {c}: {:<28} estimated {:>9} cycles ({}-bound, {} shards) in {:?}",
                        r.label,
                        e.cycles,
                        if e.compute_bound { "compute" } else { "memory" },
                        e.shards,
                        done.latency,
                    ),
                    None => println!(
                        "  client {c}: {:<28} {:>9} cycles on the farm, {:>6} outputs, in {:?}",
                        r.label,
                        r.report.makespan_cycles,
                        r.output.len(),
                        done.latency,
                    ),
                }
            }
            assert!(!done.deadline_missed);
        }
    }
    let cb = cb_rx.recv().expect("callback fired");
    if verbose {
        println!(
            "  callback : {:<28} {:>9} cycles, delivered on the worker thread",
            "axpy 1000 (callback)",
            cb.result.expect("valid job").report.makespan_cycles
        );
    }

    let report = server.shutdown();
    println!(
        "  served {} jobs ({} simulated, {} estimated) in {:.2} s — {:.1} jobs/s, \
         occupancy {:.0}%, {} deadline misses, {} pool merges",
        report.jobs,
        report.simulated,
        report.estimated,
        report.wall_seconds,
        report.jobs_per_second(),
        report.occupancy() * 100.0,
        report.deadline_misses,
        report.pool_shards_merged,
    );
    report.jobs_per_second()
}
