//! Serve: many clients, one always-on cluster farm, three backends.
//!
//! Demonstrates the `ntx-sched` serving stack: client threads hold
//! cloned [`ntx::sched::Session`]s on the async server and build a mix
//! of GEMM / convolution / AXPY / stencil jobs (plus an instant
//! analytical estimate) with the fluent `JobBuilder`; the worker
//! admits each job into the *running* four-cluster farm the moment it
//! arrives (continuous admission — no wave batching), places it on the
//! least-loaded clusters using measured-duration feedback, and
//! delivers completions through handles and callbacks as each job's
//! last shard retires.
//!
//! New in this demo: **mixed-backend queues**. One client routes its
//! jobs to the native host-CPU backend ([`ntx::cpu`]) instead of the
//! simulator — `.native_exact()` answers bit-identically to the
//! cycle-accurate farm (every reduction through the Kulisch
//! accumulator), `.native_fast()` answers at multi-accumulator SIMD
//! speed. The demo submits the same convolution all three ways through
//! one session, checks the exact output against the simulated bits,
//! and prints the measured latency speedups plus the fast-mode RMSE
//! against exact.
//!
//! The demo then runs twice — serial farm, then a 4-thread worker
//! pool ([`ServerConfig::with_worker_threads`]) — and prints the
//! measured wall-clock speedup: pool workers step the clusters
//! speculatively while the merge front keeps every output and retire
//! event bit-identical to the serial farm.
//!
//! Run with `cargo run --release --example serve`.

use ntx::kernels::blas::GemmKernel;
use ntx::kernels::conv::Conv2dKernel;
use ntx::sched::{Server, ServerConfig, Session};
use std::time::Duration;

/// The same convolution submitted to all three executing backends
/// through one session: the simulator (the accuracy oracle), native
/// exact (must match it bitwise), and native fast (approximate, at
/// wire speed). Prints latencies, speedups, and the fast-vs-exact
/// RMSE.
fn mixed_backend_showdown() {
    let server = Server::start(ServerConfig::with_clusters(4));
    let session = server.session();
    let kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 4,
    };
    let image = data(66 * 63, 0xe1);
    let weights = data(9 * 4, 0xe2);
    let submit = |label: &str| {
        session
            .job(label)
            .conv2d(kernel, image.clone(), weights.clone())
    };
    let sim = submit("conv3x3 (simulated)").submit().expect("running");
    let exact = submit("conv3x3 (native exact)")
        .native_exact()
        .submit()
        .expect("running");
    let fast = submit("conv3x3 (native fast)")
        .native_fast()
        .submit()
        .expect("running");
    let sim = sim.wait().expect("served");
    let exact = exact.wait().expect("served");
    let fast = fast.wait().expect("served");
    let sim_out = &sim.result.as_ref().expect("valid").output;
    let exact_out = &exact.result.as_ref().expect("valid").output;
    let fast_out = &fast.result.as_ref().expect("valid").output;
    assert!(
        sim_out
            .iter()
            .zip(exact_out)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "native exact must match the simulator bitwise"
    );
    let exact_f64: Vec<f64> = exact_out.iter().map(|&v| f64::from(v)).collect();
    let err = ntx::fpu::rmse(fast_out, &exact_f64);
    println!("mixed-backend showdown: one conv3x3 job, three backends, one session");
    println!(
        "  simulated    {:>12?}   (the accuracy oracle)",
        sim.latency
    );
    println!(
        "  native exact {:>12?}   {:.0}x faster, bit-identical to the simulator",
        exact.latency,
        sim.latency.as_secs_f64() / exact.latency.as_secs_f64().max(f64::MIN_POSITIVE)
    );
    println!(
        "  native fast  {:>12?}   {:.0}x faster, rmse {:.3e} (max abs err {:.3e}) vs exact",
        fast.latency,
        sim.latency.as_secs_f64() / fast.latency.as_secs_f64().max(f64::MIN_POSITIVE),
        err.rmse,
        err.max_abs_err
    );
    let report = server.shutdown();
    println!(
        "  served {} jobs: {} simulated, {} native\n",
        report.jobs, report.simulated, report.native
    );
}

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Each client builds and submits its jobs through its own session.
fn run_client(session: &Session, client: u32) -> Vec<ntx::sched::JobHandle> {
    let deadline = Duration::from_secs(60);
    match client {
        0 => vec![
            session
                .job("conv3x3 66x63x4")
                .conv2d(
                    Conv2dKernel {
                        height: 66,
                        width: 63,
                        k: 3,
                        filters: 4,
                    },
                    data(66 * 63, 0xa1),
                    data(9 * 4, 0xa2),
                )
                .priority(2)
                .deadline(deadline)
                .submit()
                .expect("server running"),
            session
                .job("axpy 4096")
                .axpy(2.0, data(4096, 0xa3), data(4096, 0xa4))
                .deadline(deadline)
                .submit()
                .expect("server running"),
        ],
        1 => vec![
            session
                .job("gemm 48x32x24")
                .gemm(
                    GemmKernel {
                        m: 48,
                        k: 32,
                        n: 24,
                    },
                    data(48 * 32, 0xb1),
                    data(32 * 24, 0xb2),
                )
                .priority(1)
                .deadline(deadline)
                .submit()
                .expect("server running"),
            session
                .job("stencil 60x33")
                .stencil2d(60, 33, data(60 * 33, 0xb3))
                .deadline(deadline)
                .submit()
                .expect("server running"),
        ],
        2 => vec![session
            .job("gemm 512x512x512 (estimate)")
            .gemm(
                GemmKernel {
                    m: 512,
                    k: 512,
                    n: 512,
                },
                data(512 * 512, 0xc1),
                data(512 * 512, 0xc2),
            )
            .estimate()
            .priority(3)
            .submit()
            .expect("server running")],
        // Client 3 wants answers now: native host-CPU execution,
        // sharing the queue with everyone's simulated jobs.
        _ => vec![
            session
                .job("gemm 64x48x32 (native exact)")
                .gemm(
                    GemmKernel {
                        m: 64,
                        k: 48,
                        n: 32,
                    },
                    data(64 * 48, 0xc3),
                    data(48 * 32, 0xc4),
                )
                .native_exact()
                .deadline(deadline)
                .submit()
                .expect("server running"),
            session
                .job("stencil 80x44 (native fast)")
                .stencil2d(80, 44, data(80 * 44, 0xc5))
                .native_fast()
                .deadline(deadline)
                .submit()
                .expect("server running"),
        ],
    }
}

fn main() {
    mixed_backend_showdown();
    // First pass: the serial farm (worker_threads = 1); second pass:
    // a 4-thread worker pool. Same jobs, same simulated cycles —
    // only the wall clock changes.
    let serial_jps = run_demo(1, true);
    let pooled_jps = run_demo(4, false);
    if serial_jps > 0.0 && pooled_jps > 0.0 {
        println!(
            "  worker pool: {:.1} jobs/s serial vs {:.1} jobs/s on 4 threads \
             ({:.2}x wall-clock speedup, outputs bit-identical by construction)",
            serial_jps,
            pooled_jps,
            pooled_jps / serial_jps
        );
    }
}

/// Runs the whole client mix on a farm with `threads` pool workers
/// and returns the measured wall-clock jobs/s.
fn run_demo(threads: usize, verbose: bool) -> f64 {
    let server = Server::start(ServerConfig::with_clusters(4).with_worker_threads(threads));

    // A callback completion: fired on the worker thread.
    let (cb_tx, cb_rx) = std::sync::mpsc::channel();
    server
        .session()
        .job("axpy 1000 (callback)")
        .axpy(0.5, data(1000, 0xd1), data(1000, 0xd2))
        .submit_callback(move |completion| drop(cb_tx.send(completion)))
        .expect("server running");

    // Four clients submit concurrently through cloned sessions; the
    // fourth routes its jobs to the native CPU backend.
    let mut clients = Vec::new();
    for c in 0..4u32 {
        let session = server.session();
        clients.push(std::thread::spawn(move || {
            run_client(&session, c)
                .into_iter()
                .map(|h| h.wait().expect("served"))
                .collect::<Vec<_>>()
        }));
    }

    println!(
        "serve demo: 4 clients + 1 callback on a 4-cluster continuous farm \
         ({threads} pool thread{})",
        if threads == 1 { "" } else { "s" }
    );
    for (c, t) in clients.into_iter().enumerate() {
        for done in t.join().expect("client thread") {
            let r = done.result.expect("valid job");
            if verbose {
                match (r.backend, r.estimate) {
                    (ntx::sched::BackendKind::Estimate, Some(e)) => println!(
                        "  client {c}: {:<28} estimated {:>9} cycles ({}-bound, {} shards) in {:?}",
                        r.label,
                        e.cycles,
                        if e.compute_bound { "compute" } else { "memory" },
                        e.shards,
                        done.latency,
                    ),
                    (
                        ntx::sched::BackendKind::NativeFast | ntx::sched::BackendKind::NativeExact,
                        _,
                    ) => {
                        println!(
                            "  client {c}: {:<28} native CPU, {:>6} outputs, in {:?}",
                            r.label,
                            r.output.len(),
                            done.latency,
                        );
                    }
                    _ => println!(
                        "  client {c}: {:<28} {:>9} cycles on the farm, {:>6} outputs, in {:?}",
                        r.label,
                        r.report.makespan_cycles,
                        r.output.len(),
                        done.latency,
                    ),
                }
            }
            assert!(!done.deadline_missed);
        }
    }
    let cb = cb_rx.recv().expect("callback fired");
    if verbose {
        println!(
            "  callback : {:<28} {:>9} cycles, delivered on the worker thread",
            "axpy 1000 (callback)",
            cb.result.expect("valid job").report.makespan_cycles
        );
    }

    let report = server.shutdown();
    println!(
        "  served {} jobs ({} simulated, {} estimated, {} native) in {:.2} s — \
         {:.1} jobs/s, occupancy {:.0}%, {} deadline misses, {} pool merges",
        report.jobs,
        report.simulated,
        report.estimated,
        report.native,
        report.wall_seconds,
        report.jobs_per_second(),
        report.occupancy() * 100.0,
        report.deadline_misses,
        report.pool_shards_merged,
    );
    report.jobs_per_second()
}
