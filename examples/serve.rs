//! Serve: many clients, one cluster farm.
//!
//! Demonstrates the `ntx-sched` serving stack: three client threads
//! submit a mix of GEMM / convolution / AXPY / stencil jobs (plus an
//! instant analytical estimate) to the async [`ntx::sched::Server`];
//! the worker batches them into priority-ordered waves, overlaps them
//! across four simulated clusters with the pipelined farm, and
//! delivers completions through handles and callbacks.
//!
//! Run with `cargo run --release --example serve`.

use ntx::kernels::blas::GemmKernel;
use ntx::kernels::conv::Conv2dKernel;
use ntx::sched::{JobKind, JobOpts, Server, ServerConfig};
use std::time::Duration;

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

fn client_jobs(client: u32) -> Vec<(String, JobKind, JobOpts)> {
    let deadline = JobOpts::default().with_deadline(Duration::from_secs(60));
    match client {
        0 => vec![
            (
                "conv3x3 66x63x4".into(),
                JobKind::Conv2d {
                    kernel: Conv2dKernel {
                        height: 66,
                        width: 63,
                        k: 3,
                        filters: 4,
                    },
                    image: data(66 * 63, 0xa1),
                    weights: data(9 * 4, 0xa2),
                },
                deadline.with_priority(2),
            ),
            (
                "axpy 4096".into(),
                {
                    JobKind::Axpy {
                        a: 2.0,
                        x: data(4096, 0xa3),
                        y: data(4096, 0xa4),
                    }
                },
                deadline,
            ),
        ],
        1 => vec![
            (
                "gemm 48x32x24".into(),
                JobKind::Gemm {
                    dims: GemmKernel {
                        m: 48,
                        k: 32,
                        n: 24,
                    },
                    a: data(48 * 32, 0xb1),
                    b: data(32 * 24, 0xb2),
                },
                deadline.with_priority(1),
            ),
            (
                "stencil 60x33".into(),
                JobKind::Stencil2d {
                    height: 60,
                    width: 33,
                    grid: data(60 * 33, 0xb3),
                },
                deadline,
            ),
        ],
        _ => vec![(
            "gemm 512x512x512 (estimate)".into(),
            JobKind::Gemm {
                dims: GemmKernel {
                    m: 512,
                    k: 512,
                    n: 512,
                },
                a: data(512 * 512, 0xc1),
                b: data(512 * 512, 0xc2),
            },
            JobOpts::estimate().with_priority(3),
        )],
    }
}

fn main() {
    let server = Server::start(ServerConfig::with_clusters(4));

    // A callback completion: fired on the worker thread.
    let (cb_tx, cb_rx) = std::sync::mpsc::channel();
    server
        .handle()
        .submit_callback(
            "axpy 1000 (callback)",
            JobKind::Axpy {
                a: 0.5,
                x: data(1000, 0xd1),
                y: data(1000, 0xd2),
            },
            JobOpts::default(),
            move |completion| drop(cb_tx.send(completion)),
        )
        .expect("server running");

    // Three clients submit concurrently through cloned handles.
    let mut clients = Vec::new();
    for c in 0..3u32 {
        let handle = server.handle();
        clients.push(std::thread::spawn(move || {
            let mut waits = Vec::new();
            for (label, kind, opts) in client_jobs(c) {
                waits.push(handle.submit_with(label, kind, opts).expect("running"));
            }
            waits
                .into_iter()
                .map(|h| h.wait().expect("served"))
                .collect::<Vec<_>>()
        }));
    }

    println!("serve demo: 3 clients + 1 callback on a 4-cluster farm");
    for (c, t) in clients.into_iter().enumerate() {
        for done in t.join().expect("client thread") {
            let r = done.result.expect("valid job");
            match r.estimate {
                Some(e) => println!(
                    "  client {c}: {:<28} estimated {:>9} cycles ({}-bound, {} shards) in {:?}",
                    r.label,
                    e.cycles,
                    if e.compute_bound { "compute" } else { "memory" },
                    e.shards,
                    done.latency,
                ),
                None => println!(
                    "  client {c}: {:<28} {:>9} cycles on the farm, {:>6} outputs, in {:?}",
                    r.label,
                    r.report.makespan_cycles,
                    r.output.len(),
                    done.latency,
                ),
            }
            assert!(!done.deadline_missed);
        }
    }
    let cb = cb_rx.recv().expect("callback fired");
    println!(
        "  callback : {:<28} {:>9} cycles, delivered on the worker thread",
        "axpy 1000 (callback)",
        cb.result.expect("valid job").report.makespan_cycles
    );

    let report = server.shutdown();
    println!(
        "  served {} jobs ({} simulated, {} estimated) in {:.2} s — {:.1} jobs/s, \
         occupancy {:.0}%, {} deadline misses",
        report.jobs,
        report.simulated,
        report.estimated,
        report.wall_seconds,
        report.jobs_per_second(),
        report.occupancy() * 100.0,
        report.deadline_misses
    );
}
