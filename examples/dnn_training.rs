//! The Table II study: training energy efficiency of the NTX system
//! configurations on the six evaluated networks.
//!
//! Run with `cargo run --release --example dnn_training`.

use ntx::dnn::{networks, TrainingModel};
use ntx::model::scaling::TechNode;
use ntx::model::system::SystemConfig;
use ntx::model::table2::{evaluate_training, this_work_rows};

fn main() {
    // Per-network detail on one configuration.
    let cfg = SystemConfig::ntx(64, TechNode::Nm14);
    println!(
        "{} in 14 nm: {} clusters @ {:.2} GHz ({:.2} V), peak {:.2} Top/s\n",
        cfg.label,
        cfg.clusters,
        cfg.frequency / 1e9,
        cfg.voltage(),
        cfg.peak_flops() / 1e12
    );
    let tm = TrainingModel::default();
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "network", "Gflop", "time [ms]", "power [W]", "Gop/sW"
    );
    for net in networks::all() {
        let e = evaluate_training(&cfg, &net, &tm);
        println!(
            "{:<14} {:>10.1} {:>10.2} {:>10.1} {:>12.1}",
            net.name,
            e.flops / 1e9,
            e.time_s * 1e3,
            e.power_w,
            e.gops_per_watt
        );
    }

    // The full Table II sweep.
    println!("\nGeometric-mean efficiency across all nine configurations:");
    let paper = [22.5, 29.3, 36.7, 35.9, 47.5, 60.4, 70.6, 76.0, 78.7];
    for (row, p) in this_work_rows(&tm).iter().zip(paper) {
        println!(
            "  {:<12} {} nm  {:>6.2} GHz  {:>6.3} Top/s  ->  {:>5.1} Gop/sW  (paper {:>4.1})",
            row.label, row.logic_nm, row.freq_ghz, row.peak_tops, row.geomean, p
        );
    }
}
