//! The §II-E offload path, end to end: an RV32IMC control program —
//! written with the built-in assembler and executed by the interpreted
//! core — programs an NTX register window over the cluster bus, starts
//! a reduction, polls the status register, and stops.
//!
//! Run with `cargo run --example riscv_offload`.

use ntx::isa::{AguConfig, Command, LoopNest, NtxConfig, OperandSelect, RegFile, RegOffset};
use ntx::riscv::{reg, Assembler, Cpu, Trap};
use ntx::sim::{map, Cluster, ClusterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // Data: x = [1..32], y = all 0.5 -> dot product = 0.5 * 32*33/2.
    let n = 32u32;
    let x: Vec<f32> = (1..=n).map(|i| i as f32).collect();
    let y = vec![0.5f32; n as usize];
    cluster.write_tcdm_f32(0x0000, &x);
    cluster.write_tcdm_f32(0x0800, &y);

    // Describe the command, then let the driver-side register image
    // tell us exactly which words the core must write.
    let cfg = NtxConfig::builder()
        .command(Command::Mac {
            operand: OperandSelect::Memory,
        })
        .loops(LoopNest::vector(n))
        .agu(0, AguConfig::stream(0x0000, 4))
        .agu(1, AguConfig::stream(0x0800, 4))
        .agu(2, AguConfig::fixed(0x0c00))
        .build()?;
    let mut image = RegFile::new();
    image.load_config(&cfg);

    // Control program: write every register of NTX 0's window (command
    // last — writing it commits and starts, §II-E), then poll STATUS
    // until idle, then ebreak.
    let mut asm = Assembler::new(0);
    asm.la(reg::T0, map::NTX_BASE);
    for off in (0..ntx::isa::NTX_REGFILE_BYTES).step_by(4) {
        if off == RegOffset::COMMAND || off == RegOffset::STATUS {
            continue;
        }
        let value = image.read(off, false)?;
        asm.li(reg::T1, value as i32);
        asm.sw(reg::T1, reg::T0, off as i32);
    }
    asm.li(reg::T1, cfg.command.encode() as i32);
    asm.sw(reg::T1, reg::T0, RegOffset::COMMAND as i32);
    let poll = asm.new_label();
    asm.bind(poll);
    asm.lw(reg::T2, reg::T0, RegOffset::STATUS as i32);
    asm.bnez(reg::T2, poll);
    // Fetch the result into a0 for good measure.
    asm.li(reg::T3, 0x0c00);
    asm.lw(reg::A0, reg::T3, 0);
    asm.ebreak();

    let program = asm.assemble()?;
    println!(
        "control program: {} instructions ({} bytes)",
        program.len(),
        4 * program.len()
    );
    cluster.load_program(0, &program);

    let mut cpu = Cpu::new(map::L2_BASE);
    let trap = cluster.run_program(&mut cpu, 100_000);
    assert_eq!(trap, Some(Trap::Ebreak), "program must finish cleanly");

    let result = f32::from_bits(cpu.reg(reg::A0));
    let expect = 0.5 * (n * (n + 1) / 2) as f32;
    println!("core executed {} instructions", cpu.instret());
    println!("dot product   = {result} (expected {expect})");
    println!("cluster cycles = {}", cluster.cycle());
    assert_eq!(result, expect);
    Ok(())
}
