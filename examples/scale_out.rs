//! Scale-out: shard a job queue across multiple NTX clusters.
//!
//! Demonstrates the `ntx-sched` runtime: a convolution, a GEMM, an
//! AXPY and a stencil are submitted to a job queue, tiled across four
//! simulated clusters with double-buffered DMA, space-shared and
//! pipelined by the cluster farm, and executed with bit-identical
//! results to a single-cluster run — at a fraction of the makespan.
//!
//! Run with `cargo run --release --example scale_out`.

use ntx::kernels::blas::GemmKernel;
use ntx::kernels::conv::Conv2dKernel;
use ntx::model::power::EnergyModel;
use ntx::sched::{JobQueue, ScaleOutConfig, ScaleOutExecutor};

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

fn build_queue() -> JobQueue {
    let mut queue = JobQueue::new();
    let kernel = Conv2dKernel {
        height: 98,
        width: 63,
        k: 3,
        filters: 4,
    };
    queue
        .job("conv3x3 96x61x4")
        .conv2d(
            kernel,
            data((kernel.height * kernel.width) as usize, 0xaa55),
            data((kernel.k * kernel.k * kernel.filters) as usize, 0x1234),
        )
        .submit();
    let dims = GemmKernel {
        m: 48,
        k: 32,
        n: 24,
    };
    queue
        .job("gemm 48x32x24")
        .gemm(
            dims,
            data((dims.m * dims.k) as usize, 7),
            data((dims.k * dims.n) as usize, 9),
        )
        .submit();
    // Two small jobs: the space-sharing placement packs these onto the
    // clusters the bigger jobs leave idle, so they run concurrently.
    queue
        .job("axpy 1000")
        .axpy(1.5, data(1000, 0x11), data(1000, 0x22))
        .submit();
    queue
        .job("stencil 40x23")
        .stencil2d(40, 23, data(40 * 23, 0x33))
        .submit();
    queue
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Run the same queue on 1 and on 4 clusters.
    let mut single = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(1));
    let base = single.run_queue(&mut build_queue())?;

    let mut wide = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(4));
    let batch = wide.run_queue(&mut build_queue())?;

    println!(
        "scale-out demo: {} jobs on 4 clusters (pipelined farm)",
        batch.results.len()
    );
    for (r1, r4) in base.results.iter().zip(&batch.results) {
        let identical = r1
            .output
            .iter()
            .zip(&r4.output)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        println!(
            "  {:<18} {:>9} -> {:>8} cycles ({:.2}x), outputs bit-identical: {}",
            r4.label,
            r1.report.makespan_cycles,
            r4.report.makespan_cycles,
            r4.report.speedup_vs(&r1.report),
            identical
        );
        assert!(identical, "sharding must not change results");
    }

    let model = EnergyModel::tapeout();
    let energy = batch.report.energy(&model);
    println!(
        "  batch: {:.2} Gflop/s aggregate, {:.0}% DMA occupancy, {:.3} W, {:.1} Gflop/sW",
        batch.report.flops_per_second() / 1e9,
        batch.report.dma_occupancy() * 100.0,
        energy.power_w,
        energy.flops_per_watt / 1e9,
    );
    println!(
        "  strong scaling vs 1 cluster: {:.2}x speedup, {:.0}% efficiency",
        batch.report.speedup_vs(&base.report),
        batch.report.scaling_efficiency_vs(&base.report) * 100.0,
    );

    // The same queue under the barriered reference accounting: every
    // job waits for its predecessor's slowest cluster. The pipelined
    // farm (the default) overlaps the two jobs instead — same per-job
    // results, smaller batch makespan.
    let mut barriered = ScaleOutExecutor::new(ScaleOutConfig::with_clusters(4).barriered());
    let serial = barriered.run_queue(&mut build_queue())?;
    println!(
        "  inter-job pipelining: {} -> {} cycles ({:.2}x vs the barriered reference)",
        serial.report.makespan_cycles,
        batch.report.makespan_cycles,
        serial.report.makespan_cycles as f64 / batch.report.makespan_cycles as f64,
    );
    Ok(())
}
