//! A small Fig. 5 roofline study: run three kernels of very different
//! operational intensity on the simulated cluster and place them on the
//! roofline (the full 15-point sweep lives in the `report-fig5`
//! binary of `ntx-bench`).
//!
//! Run with `cargo run --release --example roofline`.

use ntx::kernels::blas::{AxpyKernel, GemmKernel};
use ntx::kernels::schedule::{axpy_tiles, run_tiles};
use ntx::kernels::stencil::Laplace2dKernel;
use ntx::model::roofline::Roofline;
use ntx::sim::{Cluster, ClusterConfig};

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) - 0.5
        })
        .collect()
}

fn main() {
    let roofline = Roofline::default();
    println!(
        "roofline: peak {:.0} Gflop/s, bandwidth {:.0} GB/s, ridge {:.1} flop/B",
        roofline.peak_flops / 1e9,
        roofline.peak_bandwidth / 1e9,
        roofline.ridge()
    );
    println!(
        "practical (13 % conflicts): {:.1} Gflop/s / {:.2} GB/s\n",
        roofline.practical_peak() / 1e9,
        roofline.practical_bandwidth() / 1e9
    );

    // 1. AXPY: memory bound, streamed through the DMA.
    let n = 8192u32;
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.ext_mem().write_f32_slice(0, &data(n as usize, 1));
    cluster
        .ext_mem()
        .write_f32_slice(0x40_0000, &data(n as usize, 2));
    let tiles = axpy_tiles(&cluster, n, 1.5, 0, 0x40_0000, 2048);
    let perf = run_tiles(&mut cluster, &tiles);
    let oi = AxpyKernel { n, a: 1.5 }.cost().operational_intensity();
    report(
        "AXPY 8192 (streaming)",
        oi,
        perf.flops_per_second(1.25e9),
        &roofline,
    );

    // 2. GEMM 48³: compute bound, in the TCDM.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let g = GemmKernel {
        m: 48,
        k: 48,
        n: 48,
    };
    let (_, perf) = g.run(&mut cluster, &data(48 * 48, 3), &data(48 * 48, 4));
    let perf_flops = perf.flops as f64 / perf.cycles as f64 * 1.25e9;
    report(
        "GEMM 48 (in TCDM)",
        g.cost().operational_intensity(),
        perf_flops,
        &roofline,
    );

    // 3. 2-D Laplacian: memory bound, star stencil decomposed into two
    //    NTX instructions (§III-B3).
    let mut cluster = Cluster::new(ClusterConfig::default());
    let l = Laplace2dKernel {
        height: 63,
        width: 63,
    };
    let (_, perf) = l.run(&mut cluster, &data(63 * 63, 5));
    let perf_flops = perf.flops as f64 / perf.cycles as f64 * 1.25e9;
    report(
        "LAP2D 63x63 (in TCDM)",
        l.cost().operational_intensity(),
        perf_flops,
        &roofline,
    );
}

fn report(name: &str, oi: f64, achieved: f64, roofline: &Roofline) {
    let bound = if roofline.is_compute_bound(oi) {
        "compute-bound"
    } else {
        "memory-bound"
    };
    println!(
        "{name:<24} OI {oi:>6.2} flop/B  {:>6.2} Gflop/s  ({bound}, roof {:.2} Gflop/s)",
        achieved / 1e9,
        roofline.performance(oi) / 1e9
    );
}
