//! The §II-C precision study: the NTX wide (PCS/Kulisch) accumulator
//! against a conventional fp32 FMA FPU, over increasingly long
//! reductions.
//!
//! Run with `cargo run --release --example precision`.

use ntx::fpu::{rmse_ratio_vs_fma, WideAccumulator};

fn data(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

fn main() {
    // A sum that catastrophically cancels: the wide accumulator is
    // exact, the sequential FPU is not.
    let mut acc = WideAccumulator::new();
    acc.add_product(3.0e7, 3.0e7);
    acc.add_product(1.0, 1.0);
    acc.add_product(-3.0e7, 3.0e7);
    // The repeated operand is the point: this is the textbook
    // cancelling sum a conventional FPU gets wrong.
    #[allow(clippy::eq_op)]
    let sequential = (3.0e7f32 * 3.0e7) + 1.0 - (3.0e7f32 * 3.0e7);
    println!("cancelling sum 9e14 + 1 - 9e14:");
    println!("  NTX wide accumulator : {}", acc.round());
    println!("  sequential f32       : {sequential}\n");

    // RMSE vs dot-product length (the paper's conv-layer experiment is
    // the 576-long case: 3x3 kernel x 64 channels).
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "dot len", "NTX RMSE", "f32-FMA RMSE", "ratio"
    );
    for dot_len in [16usize, 64, 576, 4096] {
        let rows = 512;
        let lhs = data(dot_len * rows, 0x1111_2222);
        let rhs = data(dot_len * rows, 0x3333_4444);
        let (ntx, fma) = rmse_ratio_vs_fma(&lhs, &rhs, dot_len);
        println!(
            "{:>10} {:>14.3e} {:>14.3e} {:>9.2}x",
            dot_len,
            ntx.rmse,
            fma.rmse,
            fma.rmse / ntx.rmse
        );
    }
    println!("\n(paper: 1.7x lower RMSE than a 32-bit FPU on a DNN conv layer)");
}
