//! The Table I workload: a multi-filter 3×3 convolution streaming
//! through the cluster with DMA double buffering (§II-E), reporting the
//! figures of merit the paper measures on silicon.
//!
//! Run with `cargo run --release --example conv3x3`.

use ntx::kernels::conv::Conv2dKernel;
use ntx::kernels::reference;
use ntx::kernels::schedule::{conv_tiles, run_tiles, write_replicated_weights};
use ntx::model::power::EnergyModel;
use ntx::sim::{Cluster, ClusterConfig};

fn pseudo_random(n: usize, mut seed: u32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) * 2.0 - 1.0
        })
        .collect()
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let kernel = Conv2dKernel {
        height: 66,
        width: 63,
        k: 3,
        filters: 8,
    };
    let image = pseudo_random((kernel.height * kernel.width) as usize, 0xfeed_beef);
    let weights = pseudo_random((kernel.k * kernel.k * kernel.filters) as usize, 0x0bad_cafe);

    cluster.ext_mem().write_f32_slice(0, &image);
    write_replicated_weights(&mut cluster, 0, &weights);
    let tiles = conv_tiles(&cluster, &kernel, 0, 0, 0x10_0000, 8);
    println!(
        "streaming a {}x{} image through {} band tiles, {} filters",
        kernel.height,
        kernel.width,
        tiles.len(),
        kernel.filters
    );
    let perf = run_tiles(&mut cluster, &tiles);

    // Verify one filter against the f64 reference.
    let (oh, ow) = (kernel.out_height() as usize, kernel.out_width() as usize);
    let got = cluster.ext_mem().read_f32_slice(0x10_0000, oh * ow);
    let expect = reference::conv2d(
        &image,
        kernel.height as usize,
        kernel.width as usize,
        &weights[..9],
        3,
    );
    let max_err = got
        .iter()
        .zip(&expect)
        .map(|(g, e)| (g - e).abs())
        .fold(0f32, f32::max);
    println!("filter-0 max abs error vs reference: {max_err:.2e}");

    let freq = cluster.config().ntx_freq_hz;
    let model = EnergyModel::tapeout();
    println!("--- Table I figures of merit (measured) ---");
    println!(
        "sustained performance : {:6.2} Gflop/s (peak 20, paper sustains ~17.4)",
        perf.flops_per_second(freq) / 1e9
    );
    println!(
        "banking conflicts     : {:6.2} %      (paper ~13 %)",
        perf.conflict_probability() * 100.0
    );
    println!(
        "DMA bandwidth         : {:6.2} GB/s   (port peak 5)",
        perf.dma_bandwidth(freq) / 1e9
    );
    println!(
        "power                 : {:6.1} mW     (paper 186 mW)",
        model.cluster_power(&perf, freq) * 1e3
    );
    println!(
        "peak-rate efficiency  : {:6.1} Gflop/sW (paper 108)",
        model.peak_efficiency(&perf, freq, cluster.config().peak_flops()) / 1e9
    );
}
